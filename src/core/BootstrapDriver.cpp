//===- core/BootstrapDriver.cpp - The bootstrapping cascade ---------------===//

#include "core/BootstrapDriver.h"

#include "analysis/Andersen.h"
#include "analysis/OneLevelFlow.h"
#include "core/AliasCover.h"
#include "core/ClusterDependencies.h"
#include "core/RelevantStatements.h"
#include "fscs/ClusterAliasAnalysis.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>

using namespace bsaa;
using namespace bsaa::core;
using namespace bsaa::ir;

void core::detail::submitClusterJobOrThrow(ThreadPool &Pool,
                                           std::function<void()> Job) {
  if (!Pool.submit(std::move(Job)))
    throw std::runtime_error(
        "ThreadPool rejected a cluster job (pool shutting down); the "
        "cluster would silently report a default-initialized result");
}

BootstrapDriver::BootstrapDriver(const Program &P, BootstrapOptions Opts)
    : Prog(P), Opts(std::move(Opts)), CG(P) {
  if (this->Opts.SummaryCache || this->Opts.RelevantSliceCache)
    ProgFP = programFingerprint(P);
}

const analysis::SteensgaardAnalysis &BootstrapDriver::steensgaard() {
  if (!Steens) {
    Steens = std::make_unique<analysis::SteensgaardAnalysis>(Prog);
    if (Opts.AdoptSteensgaard)
      Steens->adoptSolutionFrom(*Opts.AdoptSteensgaard);
    else
      Steens->run();
  }
  return *Steens;
}

namespace {

/// Splits \p Partition by the points-to sets of \p PointsToVarsOf:
/// one cluster per pointed-to cell, deduplicated, singletons for
/// pointers with no targets. Shared by the One-Flow and Andersen
/// refinement stages.
template <typename PtsFn>
std::vector<Cluster> splitByPointsTo(const Cluster &Partition,
                                     PtsFn PointsToVarsOf) {
  std::map<VarId, std::vector<VarId>> ByObject;
  std::vector<VarId> Unattached;
  for (VarId V : Partition.Members) {
    std::vector<VarId> Pts = PointsToVarsOf(V);
    if (Pts.empty()) {
      Unattached.push_back(V);
      continue;
    }
    for (VarId O : Pts)
      ByObject[O].push_back(V);
  }
  std::vector<Cluster> Out;
  // Ordered set: O(log n) membership instead of the O(n) linear scan a
  // vector would need, which made this O(n^2) in the cluster count.
  std::set<std::vector<VarId>> SeenMembers;
  for (auto &[Obj, Members] : ByObject) {
    (void)Obj;
    std::sort(Members.begin(), Members.end());
    Members.erase(std::unique(Members.begin(), Members.end()),
                  Members.end());
    if (!SeenMembers.insert(Members).second)
      continue;
    Cluster C;
    C.Members = Members;
    C.SourcePartition = Partition.SourcePartition;
    Out.push_back(std::move(C));
  }
  for (VarId V : Unattached) {
    Cluster C;
    C.Members = {V};
    C.SourcePartition = Partition.SourcePartition;
    Out.push_back(std::move(C));
  }
  eliminateSubsetClusters(Out);
  return Out;
}

/// Content key of one Andersen refinement: exactly the solver's inputs.
/// The solver sees the slice statements (as a constraint system over
/// raw VarIds) and the member list (as the pointers to cluster); var
/// records pin the type facts (isPointer etc.) the solver and the
/// clusterer consult. No program fingerprint: an edit elsewhere leaves
/// the key, and hence the cached refinement, valid.
support::Digest andersenRefinementKey(const Program &P, const Cluster &Part,
                                      const analysis::AndersenAnalysis::Options
                                          &AOpts) {
  support::ContentHasher H;
  H.u64(0x414e4452'5346494eull); // "ANDRSFIN"
  // Solver configuration. All configurations are proven result-equal
  // (the differential oracle pins that), but keying on them keeps the
  // cache honest under ablation runs that flip knobs back and forth.
  H.u32(uint32_t(AOpts.CycleElimination));
  H.u32(AOpts.CollapsePeriod);
  H.u32(uint32_t(AOpts.EnableHVN));
  H.u32(uint32_t(AOpts.EnableDiffProp));
  auto HashVar = [&](VarId V) {
    H.u32(V);
    if (V == InvalidVar)
      return;
    const Variable &Var = P.var(V);
    H.u32(uint32_t(Var.Kind));
    H.u32(uint32_t(Var.Base));
    H.u32(Var.PtrDepth);
    H.u32(Var.Owner);
  };
  H.u64(Part.Members.size());
  for (VarId V : Part.Members)
    HashVar(V);
  H.u64(Part.Statements.size());
  for (LocId L : Part.Statements) {
    const Location &Loc = P.loc(L);
    H.u32(L);
    H.u32(uint32_t(Loc.Kind));
    HashVar(Loc.Lhs);
    HashVar(Loc.Rhs);
  }
  return H.digest();
}

uint64_t approxClusterVectorBytes(const std::vector<Cluster> &Cs) {
  uint64_t N = sizeof(Cs);
  for (const Cluster &C : Cs)
    N += sizeof(Cluster) + C.Members.size() * sizeof(VarId);
  return N;
}

} // namespace

std::vector<Cluster> BootstrapDriver::refineByAndersen(const Cluster &Part) {
  support::Digest Key{0, 0};
  if (Opts.AndersenRefinementCache) {
    Key = andersenRefinementKey(Prog, Part, Opts.AndersenOpts);
    if (std::shared_ptr<const std::vector<Cluster>> Hit =
            Opts.AndersenRefinementCache->lookup(Key)) {
      std::vector<Cluster> Pieces = *Hit;
      // Partition ids are artifacts of the current Steensgaard solve
      // and may have been renumbered since the entry was inserted.
      for (Cluster &Piece : Pieces)
        Piece.SourcePartition = Part.SourcePartition;
      return Pieces;
    }
  }
  Timer TA;
  analysis::AndersenAnalysis Andersen(Prog, Opts.AndersenOpts);
  Andersen.runOn(Part.Statements);
  std::vector<Cluster> Pieces = andersenClusters(Prog, Andersen, Part);
  AndersenSeconds += TA.seconds();
  if (Opts.AndersenRefinementCache) {
    std::vector<Cluster> ToCache = Pieces;
    uint64_t Bytes = approxClusterVectorBytes(ToCache);
    Opts.AndersenRefinementCache->insert(Key, std::move(ToCache), Bytes);
  }
  return Pieces;
}

std::vector<Cluster> BootstrapDriver::buildCover() {
  const analysis::SteensgaardAnalysis &S = steensgaard();
  std::vector<Cluster> Partitions = steensgaardCover(Prog, S);
  SliceIndex Index(Prog, S);

  AndersenSeconds = 0;
  OneFlowSecs = 0;

  std::vector<Cluster> Cover;
  for (Cluster &Part : Partitions) {
    uint32_t Size = Part.pointerCount(Prog);
    if (Size == 0) {
      // No pointers: nothing to compute aliases for. (Plain-int value
      // chains are still tracked *inside* other clusters' slices.)
      continue;
    }
    // The size test alone implements the AndersenThreshold ==
    // UINT32_MAX "never refine" sentinel, since no pointer count
    // exceeds UINT32_MAX. (An explicit `== UINT32_MAX` disjunct that
    // used to sit here was unreachable dead code.)
    if (Size <= Opts.AndersenThreshold) {
      Cover.push_back(std::move(Part));
      continue;
    }

    // Oversized partition: refine. Either cascade stage runs only on
    // the partition's Algorithm-1 slice -- this is the bootstrapping.
    attachRelevantSlice(Prog, S, Part, Index,
                        Opts.RelevantSliceCache.get(), ProgFP);

    std::vector<Cluster> Pieces;
    if (Opts.UseOneFlow) {
      Timer T;
      analysis::OneLevelFlow Flow(Prog);
      Flow.runOn(Part.Statements);
      Pieces = splitByPointsTo(
          Part, [&Flow](VarId V) { return Flow.pointsToVars(V); });
      OneFlowSecs += T.seconds();
      // Anything One-Flow could not shrink falls through to Andersen.
      std::vector<Cluster> Final;
      for (Cluster &Piece : Pieces) {
        if (Piece.pointerCount(Prog) <= Opts.AndersenThreshold) {
          Final.push_back(std::move(Piece));
          continue;
        }
        attachRelevantSlice(Prog, S, Piece, Index,
                            Opts.RelevantSliceCache.get(), ProgFP);
        std::vector<Cluster> Sub = refineByAndersen(Piece);
        for (Cluster &SC : Sub)
          Final.push_back(std::move(SC));
      }
      Pieces = std::move(Final);
    } else {
      Pieces = refineByAndersen(Part);
    }
    for (Cluster &Piece : Pieces)
      Cover.push_back(std::move(Piece));
  }

  // Attach slices for every cluster that does not have one yet.
  for (Cluster &C : Cover)
    if (C.Statements.empty() && C.TrackedRefs.empty())
      attachRelevantSlice(Prog, S, C, Index,
                          Opts.RelevantSliceCache.get(), ProgFP);
  return Cover;
}

namespace {

/// The LPT dispatch key: how expensive this cluster's FSCS run is
/// likely to be. Pointer count times slice size tracks the dominant
/// cost terms (queries issued x statements each traversal may visit).
uint64_t clusterCostKey(const ir::Program &P, const Cluster &C) {
  uint64_t Pointers = C.pointerCount(P);
  uint64_t Slice = std::max<uint64_t>(1, C.Statements.size());
  return std::max<uint64_t>(1, Pointers) * Slice;
}

} // namespace

namespace {

/// Copies the replayable (non-timing) metrics of a cluster run out of
/// the engine/dovetail accounting. Shared by the compute path and the
/// cache-hit path so both produce bit-identical ClusterRunResults.
void fillClusterMetrics(ClusterRunResult &R,
                        const fscs::SummaryEngine::EngineStats &ES,
                        const fscs::DovetailStats &DS) {
  R.Steps = ES.Steps;
  R.SummaryTuples = ES.SummaryTuples;
  R.SummaryKeys = ES.Keys;
  R.BudgetHit = ES.BudgetHit;
  R.Approximated = ES.Approximated;
  R.DepthLevels = DS.DepthLevels;
  R.FsciQueries = DS.FsciQueries;
  R.DovetailComplete = DS.Complete;
}

} // namespace

ClusterRunResult BootstrapDriver::analyzeCluster(const Cluster &C) const {
  assert(Steens && "run steensgaard() before analyzing clusters");
  ClusterRunResult R;
  R.PointerCount = C.pointerCount(Prog);
  R.SliceSize = static_cast<uint32_t>(C.Statements.size());
  R.CostKey = clusterCostKey(Prog, C);
  Timer T;

  support::Digest Key{0, 0};
  support::Digest ScopeKey{0, 0};
  const bool UseScope = Opts.SummaryCache && Opts.ScopedSummaryKeys;
  bool ScopeKeyComputed = false;
  if (Opts.SummaryCache) {
    Key = fscs::clusterSummaryKey(ProgFP, C, Opts.EngineOpts);
    std::shared_ptr<const fscs::CachedClusterRun> Hit =
        Opts.SummaryCache->lookup(Key);
    if (!Hit && UseScope) {
      // Exact-program miss: the cluster may still be untouched by
      // whatever edit separates this program from the one that filled
      // the cache. The dependency-scope key hashes everything the run
      // can observe, so a hit here replays just as soundly.
      ScopeKey = clusterScopeKey(Prog, CG, *Steens, C, Opts.EngineOpts);
      ScopeKeyComputed = true;
      Hit = Opts.SummaryCache->lookup(ScopeKey);
      if (Hit) // Republish under this program's exact key.
        Opts.SummaryCache->insertAlias(Key, Hit);
    }
    if (Hit) {
      // Replay the memoized run: identical metrics, identical global
      // statistics contributions, no SummaryEngine re-execution.
      fillClusterMetrics(R, Hit->Stats, Hit->Dove);
      R.FromCache = true;
      fscs::SummaryEngine::accumulateGlobalStats(Hit->Stats, stats());
      fscs::accumulateDovetailStats(Hit->Dove, stats());
      R.Seconds = T.seconds();
      return R;
    }
  }

  fscs::ClusterAliasAnalysis AA(Prog, CG, *Steens, C, Opts.EngineOpts);
  AA.prepare();
  // Workload: the points-to set of every member pointer at its owning
  // function's exit (globals: at the entry function's exit).
  FuncId Entry = Prog.entryFunction();
  for (VarId V : C.Members) {
    const Variable &Var = Prog.var(V);
    if (!Var.isPointer())
      continue;
    FuncId Owner = Var.Owner != InvalidFunc ? Var.Owner : Entry;
    if (Owner == InvalidFunc)
      continue;
    AA.pointsTo(V, Prog.func(Owner).Exit);
    if (AA.engine().budgetExhausted())
      break;
  }
  R.Seconds = T.seconds();
  fscs::SummaryEngine::EngineStats ES = AA.engine().stats();
  fillClusterMetrics(R, ES, AA.dovetailStats());
  // Per-thread shards make this contention-free from worker threads.
  AA.engine().accumulateGlobalStats(stats());
  // Mirrored on the cache-hit path above so dovetail accounting in the
  // effective registry is invariant under cache replay.
  fscs::accumulateDovetailStats(AA.dovetailStats(), stats());

  if (Opts.SummaryCache) {
    // Publish the complete memoized product so a future hit replays
    // this run bit-for-bit (first insert wins on a racing key).
    fscs::CachedClusterRun Run;
    Run.Engine = AA.engine().exportState();
    Run.Dove = AA.dovetailStats();
    Run.Stats = ES;
    std::shared_ptr<const fscs::CachedClusterRun> Stored =
        Opts.SummaryCache->insert(Key, std::move(Run));
    if (UseScope) {
      if (!ScopeKeyComputed)
        ScopeKey = clusterScopeKey(Prog, CG, *Steens, C, Opts.EngineOpts);
      Opts.SummaryCache->insertAlias(ScopeKey, std::move(Stored));
    }
  }
  return R;
}

ClusterRunResult BootstrapDriver::runUnclustered() {
  steensgaard();
  Cluster Whole = wholeProgramCluster(Prog);
  return analyzeCluster(Whole);
}

BootstrapResult BootstrapDriver::runAll() { return runAll(buildCover()); }

BootstrapResult BootstrapDriver::runAll(std::vector<Cluster> Cover) {
  BootstrapResult Result;

  steensgaard();
  Result.SteensgaardSeconds = Steens->solveSeconds();

  Result.AndersenClusteringSeconds = AndersenSeconds;
  Result.OneFlowSeconds = OneFlowSecs;
  Result.NumClusters = static_cast<uint32_t>(Cover.size());
  Result.MaxClusterSize = maxClusterSize(Prog, Cover);

  Result.Clusters.resize(Cover.size());
  if (Opts.Threads > 1) {
    // Clusters are analyzed independently of one another: the paper's
    // parallelization claim, realized with a real thread pool. Jobs are
    // dispatched longest-processing-time first so a large cluster never
    // starts last and serializes the tail; each job writes its result
    // by discovery index, keeping Clusters ordering identical to the
    // sequential run.
    std::vector<size_t> Order(Cover.size());
    std::iota(Order.begin(), Order.end(), size_t(0));
    std::vector<uint64_t> Cost(Cover.size());
    for (size_t I = 0; I < Cover.size(); ++I)
      Cost[I] = clusterCostKey(Prog, Cover[I]);
    std::stable_sort(Order.begin(), Order.end(),
                     [&Cost](size_t A, size_t B) { return Cost[A] > Cost[B]; });

    ThreadPool Pool(Opts.Threads);
    for (size_t I : Order) {
      detail::submitClusterJobOrThrow(Pool, [this, &Cover, &Result, I] {
        if (Opts.ClusterHook)
          Opts.ClusterHook(Cover[I]);
        Result.Clusters[I] = analyzeCluster(Cover[I]);
      });
    }
    // Rethrows the first cluster-job exception after the batch drains.
    Pool.waitAll();
  } else {
    for (size_t I = 0; I < Cover.size(); ++I) {
      if (Opts.ClusterHook)
        Opts.ClusterHook(Cover[I]);
      Result.Clusters[I] = analyzeCluster(Cover[I]);
    }
  }

  for (const ClusterRunResult &R : Result.Clusters) {
    Result.TotalFscsSeconds += R.Seconds;
    Result.AnyBudgetHit |= R.BudgetHit;
  }
  Result.SimulatedParallelSeconds =
      simulateParallel(Result.Clusters, Opts.SimulatedParts);

  if (Opts.SummaryCache) {
    Result.SummaryCacheReport.Enabled = true;
    Result.SummaryCacheReport.Counters = Opts.SummaryCache->counters();
  }
  if (Opts.RelevantSliceCache) {
    Result.SliceCacheReport.Enabled = true;
    Result.SliceCacheReport.Counters = Opts.RelevantSliceCache->counters();
  }
  return Result;
}

double
BootstrapDriver::simulateParallel(const std::vector<ClusterRunResult> &Rs,
                                  uint32_t Parts) {
  if (Rs.empty() || Parts == 0)
    return 0;
  // The paper's greedy packing, done properly as LPT bin assignment
  // into exactly Parts fixed bins: sort clusters by descending pointer
  // count and put each into the currently least-loaded part. (The old
  // running-sum-threshold scheme could close more than Parts parts on
  // a ragged tail, under-reporting the max part time below the
  // total/Parts lower bound.)
  std::vector<size_t> Order(Rs.size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  std::stable_sort(Order.begin(), Order.end(), [&Rs](size_t A, size_t B) {
    return Rs[A].PointerCount > Rs[B].PointerCount;
  });

  // More parts than clusters degenerates to one cluster per part; cap
  // the bin count so a huge Parts value does not allocate pointlessly.
  size_t Bins = std::min<size_t>(Parts, Rs.size());
  std::vector<uint64_t> PartPointers(Bins, 0);
  std::vector<double> PartSeconds(Bins, 0);
  for (size_t I : Order) {
    size_t Least = 0;
    for (size_t P = 1; P < PartPointers.size(); ++P)
      if (PartPointers[P] < PartPointers[Least])
        Least = P;
    PartPointers[Least] += Rs[I].PointerCount;
    PartSeconds[Least] += Rs[I].Seconds;
  }
  return *std::max_element(PartSeconds.begin(), PartSeconds.end());
}

Statistics &BootstrapDriver::stats() const {
  return Opts.StatsRegistry ? *Opts.StatsRegistry : Statistics::global();
}

std::string core::toStatsJson(const BootstrapResult &R) {
  return toStatsJson(R, StatsJsonOptions());
}

namespace {

void emitCacheReport(std::ostringstream &OS, const char *Name,
                     const BootstrapResult::CacheReport &C) {
  OS << "  \"" << Name
     << "\": {\"enabled\": " << (C.Enabled ? "true" : "false")
     << ", \"hits\": " << C.Counters.Hits
     << ", \"misses\": " << C.Counters.Misses
     << ", \"inserts\": " << C.Counters.Inserts
     << ", \"bytes\": " << C.Counters.Bytes
     << ", \"hit_rate\": " << C.Counters.hitRate()
     << ", \"store_hits\": " << C.Counters.StoreHits
     << ", \"store_misses\": " << C.Counters.StoreMisses
     << ", \"store_puts\": " << C.Counters.StorePuts
     << ", \"store_hit_rate\": " << C.Counters.storeHitRate()
     << ", \"trim_evictions\": " << C.Counters.TrimEvictions << "},\n";
}

} // namespace

std::string core::toStatsJson(const BootstrapResult &R,
                              const StatsJsonOptions &O) {
  return toStatsJson(R, O, Statistics::global());
}

std::string core::toStatsJson(const BootstrapResult &R,
                              const StatsJsonOptions &O,
                              const Statistics &Stats) {
  std::ostringstream OS;
  OS << "{\n";
  if (O.IncludeTimings) {
    OS << "  \"steensgaard_seconds\": " << R.SteensgaardSeconds << ",\n";
    OS << "  \"andersen_clustering_seconds\": "
       << R.AndersenClusteringSeconds << ",\n";
    OS << "  \"oneflow_seconds\": " << R.OneFlowSeconds << ",\n";
  }
  OS << "  \"num_clusters\": " << R.NumClusters << ",\n";
  OS << "  \"max_cluster_size\": " << R.MaxClusterSize << ",\n";
  if (O.IncludeTimings) {
    OS << "  \"total_fscs_seconds\": " << R.TotalFscsSeconds << ",\n";
    OS << "  \"simulated_parallel_seconds\": " << R.SimulatedParallelSeconds
       << ",\n";
  }
  OS << "  \"any_budget_hit\": " << (R.AnyBudgetHit ? "true" : "false")
     << ",\n";
  if (O.IncludeCacheStats) {
    emitCacheReport(OS, "summary_cache", R.SummaryCacheReport);
    emitCacheReport(OS, "slice_cache", R.SliceCacheReport);
  }
  OS << "  \"clusters\": [\n";
  for (size_t I = 0; I < R.Clusters.size(); ++I) {
    const ClusterRunResult &C = R.Clusters[I];
    OS << "    {\"pointers\": " << C.PointerCount
       << ", \"slice_size\": " << C.SliceSize
       << ", \"cost_key\": " << C.CostKey;
    if (O.IncludeTimings)
      OS << ", \"seconds\": " << C.Seconds;
    OS << ", \"steps\": " << C.Steps
       << ", \"summary_tuples\": " << C.SummaryTuples
       << ", \"summary_keys\": " << C.SummaryKeys
       << ", \"depth_levels\": " << C.DepthLevels
       << ", \"fsci_queries\": " << C.FsciQueries
       << ", \"dovetail_complete\": " << (C.DovetailComplete ? "true" : "false")
       << ", \"budget_hit\": " << (C.BudgetHit ? "true" : "false")
       << ", \"approximated\": " << (C.Approximated ? "true" : "false");
    if (O.IncludeCacheStats)
      OS << ", \"from_cache\": " << (C.FromCache ? "true" : "false");
    OS << "}" << (I + 1 < R.Clusters.size() ? "," : "") << "\n";
  }
  OS << "  ],\n";
  OS << "  \"statistics\": " << Stats.toJson() << "\n";
  OS << "}\n";
  return OS.str();
}
