//===- core/RelevantStatements.cpp - Algorithm 1 --------------------------===//

#include "core/RelevantStatements.h"

#include "analysis/Steensgaard.h"

#include <algorithm>
#include <deque>

using namespace bsaa;
using namespace bsaa::core;
using namespace bsaa::ir;

SliceIndex::SliceIndex(const Program &P,
                       const analysis::SteensgaardAnalysis &Steens) {
  DefsOf.resize(P.numVars());
  StoresByBase.resize(P.numVars());
  StoresByBasePartition.resize(Steens.numPartitions());
  for (LocId L = 0; L < P.numLocs(); ++L) {
    const Location &Loc = P.loc(L);
    switch (Loc.Kind) {
    case StmtKind::Copy:
    case StmtKind::AddrOf:
    case StmtKind::Alloc:
    case StmtKind::Load:
    case StmtKind::Nullify:
      DefsOf[Loc.Lhs].push_back(L);
      break;
    case StmtKind::Store:
      StoresByBase[Loc.Lhs].push_back(L);
      StoresByBasePartition[Steens.partitionOf(Loc.Lhs)].push_back(L);
      break;
    default:
      break;
    }
  }
  PartitionPreds.resize(Steens.numPartitions());
  for (uint32_t Part = 0; Part < Steens.numPartitions(); ++Part) {
    uint32_t Succ = Steens.pointsToPartition(Part);
    if (Succ != analysis::InvalidPartition)
      PartitionPreds[Succ].push_back(Part);
  }
}

namespace {

/// Membership sets for V_P: direct vars and dereferenced vars.
struct RefSet {
  std::vector<uint8_t> Direct;
  std::vector<uint8_t> Deref;
  std::vector<VarId> DirectList;
  std::vector<VarId> DerefList;

  explicit RefSet(uint32_t NumVars)
      : Direct(NumVars, 0), Deref(NumVars, 0) {}

  bool addDirect(VarId V) {
    if (Direct[V])
      return false;
    Direct[V] = 1;
    DirectList.push_back(V);
    return true;
  }
  bool addDeref(VarId V) {
    if (Deref[V])
      return false;
    Deref[V] = 1;
    DerefList.push_back(V);
    return true;
  }
  bool hasDeref(VarId V) const { return Deref[V]; }
};

} // namespace

RelevantSlice bsaa::core::computeRelevantStatements(
    const Program &P, const analysis::SteensgaardAnalysis &Steens,
    const std::vector<VarId> &Members) {
  SliceIndex Index(P, Steens);
  return computeRelevantStatements(P, Steens, Members, Index);
}

RelevantSlice bsaa::core::computeRelevantStatements(
    const Program &P, const analysis::SteensgaardAnalysis &Steens,
    const std::vector<VarId> &Members, const SliceIndex &Index) {
  RefSet VP(P.numVars());
  std::deque<VarId> DirectWL;
  std::deque<VarId> DerefWL;
  // Partitions already in V_P / already ancestor-walked.
  std::vector<uint8_t> PartSeen(Steens.numPartitions(), 0);

  // Forward declarations of the mutually recursive adders.
  std::deque<uint32_t> NewParts;

  auto AddDirect = [&](VarId V) {
    if (!VP.addDirect(V))
      return;
    DirectWL.push_back(V);
    uint32_t Part = Steens.partitionOf(V);
    if (!PartSeen[Part]) {
      PartSeen[Part] = 1;
      NewParts.push_back(Part);
    }
  };
  // Tracking *s means tracking the values of the objects s may point
  // to; direct assignments to those objects (Algorithm 4's "r in
  // PT(s)" case) must be in the slice. For a full Steensgaard
  // partition this is a no-op (the objects are the partition's own
  // members); for Andersen sub-clusters it restores the members the
  // split would otherwise hide.
  std::deque<VarId> PendingDerefTargets;
  auto AddDeref = [&](VarId V) {
    if (!VP.addDeref(V))
      return;
    DerefWL.push_back(V);
    PendingDerefTargets.push_back(V);
  };

  for (VarId V : Members)
    AddDirect(V);

  // Rule (2), event-driven: when a partition pd joins V_P, every store
  // whose base partition is a strict ancestor of pd (or shares pd's
  // collapsed cycle) can affect aliases in pd. Walk the partition
  // graph's predecessor edges from pd; re-reaching pd itself through a
  // cycle covers the paper's cyclic q = *q case.
  std::vector<uint8_t> StoreEligible(Steens.numPartitions(), 0);
  auto MarkAncestors = [&](uint32_t Pd) {
    std::deque<uint32_t> BFS;
    for (uint32_t Pred : Index.PartitionPreds[Pd])
      BFS.push_back(Pred);
    while (!BFS.empty()) {
      uint32_t Cur = BFS.front();
      BFS.pop_front();
      if (StoreEligible[Cur])
        continue;
      StoreEligible[Cur] = 1;
      for (LocId L : Index.StoresByBasePartition[Cur]) {
        const Location &Loc = P.loc(L);
        AddDeref(Loc.Lhs);
        AddDirect(Loc.Lhs);
        AddDirect(Loc.Rhs);
      }
      for (uint32_t Pred : Index.PartitionPreds[Cur])
        BFS.push_back(Pred);
    }
  };

  while (!DirectWL.empty() || !DerefWL.empty() || !NewParts.empty() ||
         !PendingDerefTargets.empty()) {
    if (!PendingDerefTargets.empty()) {
      VarId S = PendingDerefTargets.front();
      PendingDerefTargets.pop_front();
      uint32_t Succ = Steens.pointsToPartition(Steens.partitionOf(S));
      if (Succ != analysis::InvalidPartition)
        for (VarId O : Steens.partitionMembers(Succ))
          AddDirect(O);
      continue;
    }
    if (!NewParts.empty()) {
      uint32_t Pd = NewParts.front();
      NewParts.pop_front();
      MarkAncestors(Pd);
      continue;
    }
    if (!DirectWL.empty()) {
      VarId V = DirectWL.front();
      DirectWL.pop_front();
      // Rule (1): statements assigning v pull in their sources.
      for (LocId L : Index.DefsOf[V]) {
        const Location &Loc = P.loc(L);
        switch (Loc.Kind) {
        case StmtKind::Copy:
          AddDirect(Loc.Rhs);
          break;
        case StmtKind::Load:
          AddDeref(Loc.Rhs);
          AddDirect(Loc.Rhs);
          break;
        default:
          break; // AddrOf / Alloc / Nullify sources are terminal.
        }
      }
      continue;
    }
    VarId S = DerefWL.front();
    DerefWL.pop_front();
    // *s in V_P: stores through s feed it.
    for (LocId L : Index.StoresByBase[S])
      AddDirect(P.loc(L).Rhs);
  }

  // Collect V_P and St_P from the membership lists.
  RelevantSlice Out;
  for (VarId V : VP.DirectList) {
    Out.TrackedRefs.push_back(Ref::direct(V));
    for (LocId L : Index.DefsOf[V])
      Out.Statements.push_back(L);
  }
  for (VarId V : VP.DerefList) {
    Out.TrackedRefs.push_back(Ref::deref(V));
    for (LocId L : Index.StoresByBase[V])
      Out.Statements.push_back(L);
  }
  std::sort(Out.Statements.begin(), Out.Statements.end());
  Out.Statements.erase(
      std::unique(Out.Statements.begin(), Out.Statements.end()),
      Out.Statements.end());
  std::sort(Out.TrackedRefs.begin(), Out.TrackedRefs.end());
  return Out;
}

void bsaa::core::attachRelevantSlice(
    const Program &P, const analysis::SteensgaardAnalysis &Steens,
    Cluster &C) {
  SliceIndex Index(P, Steens);
  attachRelevantSlice(P, Steens, C, Index);
}

void bsaa::core::attachRelevantSlice(
    const Program &P, const analysis::SteensgaardAnalysis &Steens,
    Cluster &C, const SliceIndex &Index) {
  RelevantSlice Slice =
      computeRelevantStatements(P, Steens, C.Members, Index);
  C.TrackedRefs = std::move(Slice.TrackedRefs);
  C.Statements = std::move(Slice.Statements);
}

//===--------------------------------------------------------------------===//
// Content-addressed slice memoization
//===--------------------------------------------------------------------===//

uint64_t bsaa::core::programFingerprint(const Program &P) {
  support::ContentHasher H;
  H.u64(0x50524f4752414d46ull); // "PROGRAMF": domain separation.
  H.u32(P.numVars());
  for (VarId V = 0; V < P.numVars(); ++V) {
    const Variable &Var = P.var(V);
    H.u32(uint32_t(Var.Kind));
    H.u32(uint32_t(Var.Base));
    H.u32(Var.PtrDepth);
    H.u32(Var.Owner);
  }
  H.u32(P.numFuncs());
  for (FuncId F = 0; F < P.numFuncs(); ++F) {
    const Function &Fn = P.func(F);
    H.u32(Fn.Entry);
    H.u32(Fn.Exit);
    H.u64(Fn.Params.size());
    for (VarId V : Fn.Params)
      H.u32(V);
    H.u32(Fn.RetVal);
    H.u32(Fn.FuncObj);
  }
  H.u32(P.numLocs());
  for (LocId L = 0; L < P.numLocs(); ++L) {
    const Location &Loc = P.loc(L);
    H.u32(uint32_t(Loc.Kind));
    H.u32(Loc.Lhs);
    H.u32(Loc.Rhs);
    H.u32(Loc.Owner);
    H.u32(Loc.IndirectTarget);
    H.u64(Loc.Callees.size());
    for (FuncId G : Loc.Callees)
      H.u32(G);
    H.u64(Loc.Succs.size());
    for (LocId S : Loc.Succs)
      H.u32(S);
  }
  H.u32(P.entryFunction());
  return H.digest().Lo;
}

support::Digest
bsaa::core::sliceCacheKey(uint64_t ProgramFingerprint,
                          const std::vector<VarId> &Members) {
  support::ContentHasher H;
  H.u64(0x534c494345'4b4559ull); // "SLICEKEY": domain separation.
  H.u64(ProgramFingerprint);
  H.u64(Members.size());
  for (VarId V : Members)
    H.u32(V);
  return H.digest();
}

void bsaa::core::attachRelevantSlice(
    const Program &P, const analysis::SteensgaardAnalysis &Steens,
    Cluster &C, const SliceIndex &Index, SliceCache *Cache,
    uint64_t ProgramFingerprint) {
  if (!Cache) {
    attachRelevantSlice(P, Steens, C, Index);
    return;
  }
  support::Digest Key = sliceCacheKey(ProgramFingerprint, C.Members);
  if (std::shared_ptr<const RelevantSlice> Hit = Cache->lookup(Key)) {
    C.TrackedRefs = Hit->TrackedRefs;
    C.Statements = Hit->Statements;
    return;
  }
  RelevantSlice Slice =
      computeRelevantStatements(P, Steens, C.Members, Index);
  C.TrackedRefs = Slice.TrackedRefs;
  C.Statements = Slice.Statements;
  uint64_t Bytes = sizeof(RelevantSlice) +
                   Slice.TrackedRefs.size() * sizeof(Ref) +
                   Slice.Statements.size() * sizeof(LocId);
  Cache->insert(Key, std::move(Slice), Bytes);
}
