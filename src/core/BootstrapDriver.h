//===- core/BootstrapDriver.h - The bootstrapping cascade ------*- C++ -*-===//
//
// Part of the bsaa project (Kahlon, PLDI 2008 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end bootstrapping pipeline of the paper:
///
///   Steensgaard partitioning
///     -> [optional One-Level Flow refinement]
///     -> Andersen clustering of partitions above a size threshold
///        (paper: 60), each run only on its partition's Algorithm-1
///        slice (Steensgaard bootstraps Andersen)
///     -> per-cluster summarization-based FSCS analysis
///     -> greedy k-way packing of clusters to simulate parallel
///        machines (the paper simulates 5), plus optional real
///        threading since clusters are independent.
///
/// The driver also runs the "without clustering" baseline (whole
/// program as one cluster, with a step budget standing in for the
/// paper's 15-minute timeout), which is exactly what Table 1 compares.
///
//===----------------------------------------------------------------------===//

#ifndef BSAA_CORE_BOOTSTRAPDRIVER_H
#define BSAA_CORE_BOOTSTRAPDRIVER_H

#include "analysis/Andersen.h"
#include "analysis/Steensgaard.h"
#include "core/Cluster.h"
#include "core/RelevantStatements.h"
#include "fscs/SummaryCache.h"
#include "fscs/SummaryEngine.h"
#include "ir/CallGraph.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace bsaa {

class ThreadPool;
class Statistics;

namespace core {

namespace detail {
/// Enqueues one cluster job, treating a rejected submit as a hard
/// error. ThreadPool::submit returns false once shutdown has begun; a
/// job rejected there would never run, leaving its cluster's slot as a
/// default-initialized ClusterRunResult indistinguishable from a real
/// result -- so rejection must throw, never be ignored.
void submitClusterJobOrThrow(ThreadPool &Pool, std::function<void()> Job);
} // namespace detail

/// Memoized Andersen refinement of one oversized partition: the vector
/// of refined sub-clusters, keyed purely by the refinement inputs
/// (member list and content, slice statements and content) so entries
/// survive program edits that leave the partition's slice intact.
/// Cached clusters carry the inserting run's SourcePartition; the
/// driver restamps it on every hit because partition ids are artifacts
/// of one Steensgaard solve.
using RefinementCache = support::ShardedCache<std::vector<Cluster>>;

/// Pipeline configuration.
struct BootstrapOptions {
  /// Steensgaard partitions with more pointers than this get refined by
  /// bootstrapped Andersen clustering (the paper's empirical 60).
  /// UINT32_MAX is the "never refine" sentinel: no pointer count
  /// exceeds it, so the size test alone implements it -- Andersen
  /// clustering is disabled entirely and every nonempty partition
  /// reaches the FSCS stage whole.
  uint32_t AndersenThreshold = 60;

  /// Cascade Das One-Level Flow between Steensgaard and Andersen:
  /// partitions above AndersenThreshold are first split by One-Level
  /// Flow points-to sets; only still-oversized clusters fall through to
  /// Andersen. (The paper suggests this as "another option".)
  bool UseOneFlow = false;

  /// Parts for the paper's simulated-parallelism report.
  uint32_t SimulatedParts = 5;

  /// Real worker threads for per-cluster analyses (0 = sequential).
  unsigned Threads = 0;

  /// Per-cluster FSCS engine options (step budget models the paper's
  /// 15-minute timeout).
  fscs::SummaryEngine::Options EngineOpts;

  /// Solver options for the Andersen refinement stage. Every
  /// configuration computes identical points-to sets (the knobs trade
  /// solve time only), but the options still participate in the
  /// refinement-cache key so cached cluster vectors never masquerade as
  /// the product of a configuration that did not produce them.
  analysis::AndersenAnalysis::Options AndersenOpts;

  /// Instrumentation hook run at the start of every cluster job (on the
  /// worker thread in threaded runs). Used for progress reporting and,
  /// in tests, for fault injection: an exception it throws surfaces
  /// from runAll() like any other cluster-job failure.
  std::function<void(const Cluster &)> ClusterHook;

  /// Cross-cluster FSCS memoization (null = disabled). Shared between
  /// cluster workers and, because entries are keyed by a program
  /// fingerprint, safely shareable across driver instances and across
  /// programs: overlapping covers and repeated ablation configurations
  /// hit the cache instead of re-running SummaryEngine. A hit replays
  /// bit-identical per-cluster metrics and global statistics.
  std::shared_ptr<fscs::SummaryCache> SummaryCache;

  /// Algorithm-1 result memoization (null = disabled), keyed the same
  /// way by (program fingerprint, member list).
  std::shared_ptr<SliceCache> RelevantSliceCache;

  /// Andersen refinement memoization for oversized partitions (null =
  /// disabled). Consulted only on the pure-Andersen paths; the key is
  /// content-addressed over the actual solver inputs, so it is sound
  /// on the One-Flow fall-through pieces too.
  std::shared_ptr<RefinementCache> AndersenRefinementCache;

  /// Additionally key summary-cache entries by the cluster's
  /// *dependency scope* (core/ClusterDependencies.h), not just the
  /// whole-program fingerprint. Scope keys survive edits outside a
  /// cluster's dependency cone, which is what makes re-analysis after
  /// a program edit incremental. Requires SummaryCache; ignored
  /// without one.
  bool ScopedSummaryKeys = false;

  /// Solved Steensgaard instance (over a previous program version) to
  /// adopt instead of re-solving. The caller MUST have verified the
  /// adoption gate -- equal ir::partitionRelevantFingerprint on both
  /// programs (see SteensgaardAnalysis::adoptSolutionFrom). The
  /// pointee must outlive this driver's steensgaard() call. Null =
  /// solve normally.
  const analysis::SteensgaardAnalysis *AdoptSteensgaard = nullptr;

  /// Directory of the persistent CacheStore backing the caches above
  /// (empty = no persistence). AliasService / IncrementalDriver /
  /// TenantRegistry resolve this through core::openStoreAndAttach at
  /// construction: every attached cache then writes winning inserts
  /// through to disk and revives memory misses from it, so a restarted
  /// process warm-starts instead of re-solving. BootstrapDriver itself
  /// ignores the path -- callers that build drivers directly attach
  /// stores to their caches explicitly.
  std::string StorePath;

  /// Already-open store to adopt instead of opening StorePath (takes
  /// precedence when non-null). The serving registry opens one store
  /// and stamps it here so every tenant shares it.
  std::shared_ptr<support::CacheStore> Store;

  /// Byte budget for the in-memory summary cache (0 = unlimited);
  /// applied by openStoreAndAttach. Trimmed entries only re-miss --
  /// with a store attached they usually revive from disk instead of
  /// recomputing.
  uint64_t SummaryCacheByteBudget = 0;

  /// Statistics registry this pipeline accumulates into (null = the
  /// process-wide Statistics::global()). Multi-tenant serving gives
  /// every tenant its own registry so concurrent re-analyses never
  /// stomp each other's statistics epoch -- the IncrementalDriver
  /// clears the *effective* registry at the start of every update,
  /// which with the global registry is only re-entrant for one driver
  /// per process.
  std::shared_ptr<Statistics> StatsRegistry;
};

/// Per-cluster FSCS outcome.
struct ClusterRunResult {
  uint32_t PointerCount = 0;
  uint32_t SliceSize = 0;  ///< Statements in the cluster's St_P slice.
  uint64_t CostKey = 0;    ///< LPT scheduling key: pointers x slice size.
  double Seconds = 0;      ///< Wall-clock of the cluster's FSCS run.
  uint64_t Steps = 0;
  uint64_t SummaryTuples = 0;
  uint64_t SummaryKeys = 0;
  uint32_t DepthLevels = 0; ///< Dovetail depth levels fully issued.
  uint32_t FsciQueries = 0; ///< Dovetail FSCI queries issued.
  bool DovetailComplete = true;
  bool BudgetHit = false;
  bool Approximated = false;
  /// Served from the summary cache (all non-timing fields replayed from
  /// the memoized run; Seconds measures the lookup instead).
  bool FromCache = false;
};

/// Whole-pipeline outcome: the raw material of a Table 1 row.
struct BootstrapResult {
  double SteensgaardSeconds = 0;
  double AndersenClusteringSeconds = 0;
  double OneFlowSeconds = 0;

  uint32_t NumClusters = 0;
  uint32_t MaxClusterSize = 0; ///< Pointers in the largest cluster.

  std::vector<ClusterRunResult> Clusters;
  double TotalFscsSeconds = 0;      ///< Sum over clusters.
  double SimulatedParallelSeconds = 0; ///< Greedy k-part max.
  bool AnyBudgetHit = false;

  /// Cache accounting at the end of the run (both all-zero with their
  /// Enabled flag false when the corresponding cache was not attached).
  /// Counters are cumulative over the cache's lifetime, which may span
  /// several drivers sharing it.
  struct CacheReport {
    bool Enabled = false;
    support::CacheCounters Counters;
  };
  CacheReport SummaryCacheReport;
  CacheReport SliceCacheReport;
};

/// Drives the cascade over one program.
class BootstrapDriver {
public:
  BootstrapDriver(const ir::Program &P, BootstrapOptions Opts);

  /// Stage 1: Steensgaard (memoized).
  const analysis::SteensgaardAnalysis &steensgaard();

  /// Stages 1-2(-3): the cluster cover per the options, slices
  /// attached. Timings land in the result of runAll() / in the fields
  /// below if called standalone.
  std::vector<Cluster> buildCover();

  /// Stage 4 for one cluster: dovetailed FSCS analysis computing the
  /// points-to set of every member pointer at its owner's exit.
  /// Requires steensgaard() to have run; thread-safe across clusters
  /// afterwards.
  ClusterRunResult analyzeCluster(const Cluster &C) const;

  /// The whole pipeline. With Threads > 1 the cluster jobs are
  /// dispatched to the pool in longest-processing-time (LPT) order --
  /// largest CostKey (pointer count x slice size) first -- which keeps
  /// the big clusters from landing last and serializing the tail.
  /// Results are written back by discovery index, so Clusters ordering
  /// is identical to the sequential run. If a cluster job throws, the
  /// remaining jobs drain and the first exception is rethrown here.
  BootstrapResult runAll();

  /// Same pipeline over a cover the caller already built with
  /// buildCover() -- the incremental driver builds the cover once to
  /// derive its invalidation prediction and then analyzes it here
  /// without paying for cover construction twice.
  BootstrapResult runAll(std::vector<Cluster> Cover);

  /// The "no clustering" baseline: one whole-program cluster.
  ClusterRunResult runUnclustered();

  /// The paper's greedy parallel simulation: clusters are packed into
  /// exactly \p Parts parts -- never more -- by longest-processing-time
  /// greedy packing on pointer count (sort descending, assign each
  /// cluster to the currently least-loaded part); returns the maximum
  /// per-part total analysis time.
  static double simulateParallel(const std::vector<ClusterRunResult> &Rs,
                                 uint32_t Parts);

  const ir::CallGraph &callGraph() const { return CG; }

  double andersenClusteringSeconds() const { return AndersenSeconds; }
  double oneFlowSeconds() const { return OneFlowSecs; }

private:
  /// Andersen refinement of one oversized cluster, memoized through
  /// Opts.AndersenRefinementCache when attached.
  std::vector<Cluster> refineByAndersen(const Cluster &Part);

  /// The effective statistics registry (Opts.StatsRegistry or the
  /// process-wide one).
  Statistics &stats() const;

  const ir::Program &Prog;
  BootstrapOptions Opts;
  ir::CallGraph CG;
  std::unique_ptr<analysis::SteensgaardAnalysis> Steens;
  double AndersenSeconds = 0;
  double OneFlowSecs = 0;
  /// Program content fingerprint for cache keys; computed once in the
  /// constructor when a cache is attached (0 otherwise).
  uint64_t ProgFP = 0;
};

/// Controls which sections toStatsJson emits. Determinism and
/// cache-equivalence tests compare runs byte-for-byte, which requires
/// excluding wall-clock timings (never repeatable) and cache counters
/// (cumulative across the cache's lifetime, so they differ between a
/// cold and a warm run even when the analysis results are identical).
struct StatsJsonOptions {
  bool IncludeTimings = true;
  bool IncludeCacheStats = true;
};

/// Renders \p R as a JSON document: pipeline timings, per-cluster
/// metrics (pointer count, slice size, LPT cost key, wall-clock, steps,
/// summary tuples/keys, dovetail accounting, budget/approximation
/// flags), cache accounting, and the merged global Statistics registry.
/// This is what --stats-json dumps in the bench harnesses.
std::string toStatsJson(const BootstrapResult &R);

/// Section-selective overload (see StatsJsonOptions).
std::string toStatsJson(const BootstrapResult &R,
                        const StatsJsonOptions &O);

/// Registry-explicit overload: renders the statistics section from
/// \p Stats instead of Statistics::global(). Pipelines run with
/// BootstrapOptions::StatsRegistry must pass the same registry here for
/// the statistics section to describe that run.
std::string toStatsJson(const BootstrapResult &R, const StatsJsonOptions &O,
                        const Statistics &Stats);

} // namespace core
} // namespace bsaa

#endif // BSAA_CORE_BOOTSTRAPDRIVER_H
