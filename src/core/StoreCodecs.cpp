//===- core/StoreCodecs.cpp - Slice / refinement blob codecs --------------===//

#include "core/StoreCodecs.h"

using namespace bsaa;
using namespace bsaa::core;
using support::ByteReader;
using support::ByteWriter;

//===----------------------------------------------------------------------===//
// Codecs
//===----------------------------------------------------------------------===//

namespace {

/// See fscs/StateCodec.cpp: a length-prefixed count claiming more
/// elements than there are input bytes left is a lie; catching it here
/// keeps a corrupt length from driving a huge allocation.
bool plausibleCount(ByteReader &R, uint32_t N) {
  if (static_cast<size_t>(N) > R.remaining()) {
    R.fail();
    return false;
  }
  return true;
}

void encodeRefs(const std::vector<ir::Ref> &Refs, ByteWriter &W) {
  W.u32(static_cast<uint32_t>(Refs.size()));
  for (const ir::Ref &R : Refs) {
    W.u32(R.Var);
    W.i8(R.Deref);
  }
}

bool decodeRefs(ByteReader &R, std::vector<ir::Ref> &Out) {
  uint32_t N = R.u32();
  if (!plausibleCount(R, N))
    return false;
  Out.resize(N);
  for (ir::Ref &Ref : Out) {
    Ref.Var = R.u32();
    Ref.Deref = R.i8();
  }
  return R.ok();
}

void encodeU32s(const std::vector<uint32_t> &Vs, ByteWriter &W) {
  W.u32(static_cast<uint32_t>(Vs.size()));
  for (uint32_t V : Vs)
    W.u32(V);
}

bool decodeU32s(ByteReader &R, std::vector<uint32_t> &Out) {
  uint32_t N = R.u32();
  if (!plausibleCount(R, N))
    return false;
  Out.resize(N);
  for (uint32_t &V : Out)
    V = R.u32();
  return R.ok();
}

uint64_t approxSliceBytes(const RelevantSlice &S) {
  // Same estimate the fresh-insert path in RelevantStatements.cpp
  // charges, so revived entries account identically.
  return sizeof(RelevantSlice) + S.TrackedRefs.size() * sizeof(ir::Ref) +
         S.Statements.size() * sizeof(ir::LocId);
}

uint64_t approxClusterVectorBytes(const std::vector<Cluster> &Cs) {
  // Mirrors the estimator in BootstrapDriver.cpp's refinement path.
  uint64_t N = sizeof(Cs);
  for (const Cluster &C : Cs)
    N += sizeof(Cluster) + C.Members.size() * sizeof(ir::VarId);
  return N;
}

} // namespace

void core::encodeRelevantSlice(const RelevantSlice &S, ByteWriter &W) {
  encodeRefs(S.TrackedRefs, W);
  encodeU32s(S.Statements, W);
}

bool core::decodeRelevantSlice(const uint8_t *Data, size_t Len,
                               RelevantSlice &Out) {
  ByteReader R(Data, Len);
  if (!decodeRefs(R, Out.TrackedRefs) || !decodeU32s(R, Out.Statements))
    return false;
  return R.atEnd();
}

void core::encodeClusterVector(const std::vector<Cluster> &Cs,
                               ByteWriter &W) {
  W.u32(static_cast<uint32_t>(Cs.size()));
  for (const Cluster &C : Cs) {
    encodeU32s(C.Members, W);
    encodeRefs(C.TrackedRefs, W);
    encodeU32s(C.Statements, W);
    // SourcePartition travels for completeness, but ids are artifacts
    // of one Steensgaard solve: every cache-hit consumer restamps it.
    W.u32(C.SourcePartition);
  }
}

bool core::decodeClusterVector(const uint8_t *Data, size_t Len,
                               std::vector<Cluster> &Out) {
  ByteReader R(Data, Len);
  uint32_t N = R.u32();
  if (!plausibleCount(R, N))
    return false;
  Out.resize(N);
  for (Cluster &C : Out) {
    if (!decodeU32s(R, C.Members) || !decodeRefs(R, C.TrackedRefs) ||
        !decodeU32s(R, C.Statements))
      return false;
    C.SourcePartition = R.u32();
  }
  return R.atEnd();
}

//===----------------------------------------------------------------------===//
// Wiring
//===----------------------------------------------------------------------===//

void core::attachSliceStore(SliceCache &Cache,
                            std::shared_ptr<support::CacheStore> Store) {
  support::CacheStoreBacking<RelevantSlice> B;
  B.Store = std::move(Store);
  B.Family = StoreFamilySlice;
  B.Version = SliceCodecVersion;
  B.Encode = [](const RelevantSlice &S, ByteWriter &W) {
    encodeRelevantSlice(S, W);
  };
  B.Decode = [](const uint8_t *Data, size_t Len, RelevantSlice &Out) {
    return decodeRelevantSlice(Data, Len, Out);
  };
  B.ApproxBytes = approxSliceBytes;
  Cache.attachStore(std::move(B));
}

void core::attachRefinementStore(
    RefinementCache &Cache, std::shared_ptr<support::CacheStore> Store) {
  support::CacheStoreBacking<std::vector<Cluster>> B;
  B.Store = std::move(Store);
  B.Family = StoreFamilyRefinement;
  B.Version = RefinementCodecVersion;
  B.Encode = [](const std::vector<Cluster> &Cs, ByteWriter &W) {
    encodeClusterVector(Cs, W);
  };
  B.Decode = [](const uint8_t *Data, size_t Len, std::vector<Cluster> &Out) {
    return decodeClusterVector(Data, Len, Out);
  };
  B.ApproxBytes = approxClusterVectorBytes;
  Cache.attachStore(std::move(B));
}

std::shared_ptr<support::CacheStore>
core::openStoreAndAttach(BootstrapOptions &Opts) {
  if (!Opts.Store && !Opts.StorePath.empty())
    Opts.Store = support::CacheStore::open(Opts.StorePath);
  if (Opts.Store) {
    if (Opts.SummaryCache)
      Opts.SummaryCache->attachStore(Opts.Store);
    if (Opts.RelevantSliceCache)
      attachSliceStore(*Opts.RelevantSliceCache, Opts.Store);
    if (Opts.AndersenRefinementCache)
      attachRefinementStore(*Opts.AndersenRefinementCache, Opts.Store);
  }
  if (Opts.SummaryCache && Opts.SummaryCacheByteBudget)
    Opts.SummaryCache->setByteBudget(Opts.SummaryCacheByteBudget);
  return Opts.Store;
}
