//===- core/Cluster.h - Pointer clusters ------------------------*- C++ -*-===//
//
// Part of the bsaa project (Kahlon, PLDI 2008 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A *cluster* is the unit of divide and conquer in the bootstrapping
/// framework: a small subset of pointers such that computing the aliases
/// of any member can be restricted to the cluster's relevant-statement
/// slice (Algorithm 1). Steensgaard partitions and Andersen clusters are
/// both represented by this type.
///
//===----------------------------------------------------------------------===//

#ifndef BSAA_CORE_CLUSTER_H
#define BSAA_CORE_CLUSTER_H

#include "ir/Ir.h"

#include <cstdint>
#include <vector>

namespace bsaa {
namespace core {

/// One pointer cluster plus its program slice.
struct Cluster {
  /// Member variables. For Steensgaard partitions these are equivalence
  /// classes; Andersen clusters may overlap each other.
  std::vector<ir::VarId> Members;

  /// V_P: every Ref whose value can affect aliases of the members
  /// (output of Algorithm 1).
  std::vector<ir::Ref> TrackedRefs;

  /// St_P: the statements that may affect aliases of the members; the
  /// only statements any per-cluster analysis needs to look at.
  std::vector<ir::LocId> Statements;

  /// The Steensgaard partition this cluster came from, or UINT32_MAX for
  /// whole-program / synthetic clusters.
  uint32_t SourcePartition = UINT32_MAX;

  /// Number of pointer-typed members (the paper's cluster-size metric).
  uint32_t pointerCount(const ir::Program &P) const {
    uint32_t N = 0;
    for (ir::VarId V : Members)
      if (P.var(V).isPointer())
        ++N;
    return N;
  }

  bool containsMember(ir::VarId V) const {
    for (ir::VarId M : Members)
      if (M == V)
        return true;
    return false;
  }
};

} // namespace core
} // namespace bsaa

#endif // BSAA_CORE_CLUSTER_H
