//===- core/RelevantStatements.h - Algorithm 1 ------------------*- C++ -*-===//
//
// Part of the bsaa project (Kahlon, PLDI 2008 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: given a set of pointers P (a Steensgaard
/// partition or Andersen cluster), compute
///
///   V_P  -- the pointers (and dereferences thereof) whose values may
///           affect aliases of pointers in P, and
///   St_P -- the statements that modify a member of V_P.
///
/// The fixpoint alternates two rules:
///  (1) a direct assignment p = q / p = *q with p in V_P pulls in the
///      source (and its base pointer), and
///  (2) a store *q = r where q is strictly higher in the Steensgaard
///      hierarchy than some p in V_P -- or shares p's partition in the
///      cyclic points-to case -- pulls in *q, q and r.
///
/// Restricting any downstream analysis to St_P loses no aliases
/// (Theorem 6); the example of Figure 3 (where `p = x` is correctly
/// *excluded*) is covered by tests and the fig3 bench.
///
//===----------------------------------------------------------------------===//

#ifndef BSAA_CORE_RELEVANTSTATEMENTS_H
#define BSAA_CORE_RELEVANTSTATEMENTS_H

#include "core/Cluster.h"
#include "ir/Ir.h"
#include "support/ShardedCache.h"

#include <vector>

namespace bsaa {
namespace analysis {
class SteensgaardAnalysis;
} // namespace analysis

namespace core {

/// Result of Algorithm 1.
struct RelevantSlice {
  std::vector<ir::Ref> TrackedRefs;  ///< V_P.
  std::vector<ir::LocId> Statements; ///< St_P.
};

/// Statement indexes shared across Algorithm 1 runs. Build once per
/// program; running the algorithm for thousands of clusters then costs
/// time proportional to each cluster's slice, not the whole program.
struct SliceIndex {
  /// Direct-assignment locations per lhs variable (Copy, AddrOf, Load,
  /// Alloc, Nullify).
  std::vector<std::vector<ir::LocId>> DefsOf;
  /// Store locations per base pointer (*base = rhs).
  std::vector<std::vector<ir::LocId>> StoresByBase;
  /// Store locations grouped by the base pointer's partition.
  std::vector<std::vector<ir::LocId>> StoresByBasePartition;
  /// Partition-graph predecessors (who points into whom), for the
  /// ancestor walk of rule (2).
  std::vector<std::vector<uint32_t>> PartitionPreds;

  SliceIndex(const ir::Program &P,
             const analysis::SteensgaardAnalysis &Steens);
};

/// Runs Algorithm 1 for the pointer set \p Members using the hierarchy
/// of \p Steens.
RelevantSlice
computeRelevantStatements(const ir::Program &P,
                          const analysis::SteensgaardAnalysis &Steens,
                          const std::vector<ir::VarId> &Members);

/// Fast path with a prebuilt index.
RelevantSlice
computeRelevantStatements(const ir::Program &P,
                          const analysis::SteensgaardAnalysis &Steens,
                          const std::vector<ir::VarId> &Members,
                          const SliceIndex &Index);

/// Convenience: fills TrackedRefs / Statements of \p C in place.
void attachRelevantSlice(const ir::Program &P,
                         const analysis::SteensgaardAnalysis &Steens,
                         Cluster &C);

/// Fast path with a prebuilt index.
void attachRelevantSlice(const ir::Program &P,
                         const analysis::SteensgaardAnalysis &Steens,
                         Cluster &C, const SliceIndex &Index);

//===----------------------------------------------------------------------===//
// Content-addressed slice memoization
//===----------------------------------------------------------------------===//

/// 64-bit content fingerprint of a whole program: variables (kind,
/// type, depth, owner), functions (params, entry/exit), and every
/// location's statement + CFG edges. Two programs with equal
/// fingerprints are treated as identical by the slice and summary
/// caches, which lets one process-wide cache serve many programs (the
/// ablation harnesses and the property-test corpus) without
/// cross-contamination.
uint64_t programFingerprint(const ir::Program &P);

/// Cache key for Algorithm-1 output. The slice is a pure function of
/// (program, Steensgaard hierarchy, members), and the hierarchy is
/// itself a deterministic function of the program, so the program
/// fingerprint plus the member list addresses the result completely
/// (see DESIGN.md, "Summary-cache key derivation").
support::Digest sliceCacheKey(uint64_t ProgramFingerprint,
                              const std::vector<ir::VarId> &Members);

/// Shared Algorithm-1 result cache (sharded, thread-safe).
using SliceCache = support::ShardedCache<RelevantSlice>;

/// Cached fast path: consults \p Cache (when non-null) before running
/// Algorithm 1, and publishes fresh results into it.
void attachRelevantSlice(const ir::Program &P,
                         const analysis::SteensgaardAnalysis &Steens,
                         Cluster &C, const SliceIndex &Index,
                         SliceCache *Cache, uint64_t ProgramFingerprint);

} // namespace core
} // namespace bsaa

#endif // BSAA_CORE_RELEVANTSTATEMENTS_H
