//===- bench/micro_analyses.cpp - google-benchmark micro suite ------------===//
//
// Microbenchmarks for the individual machinery: baseline analysis
// scaling (Steensgaard near-linear vs. Andersen superlinear), Andersen
// cycle elimination on/off, Algorithm-1 slicing cost, per-cluster FSCS
// queries, and the support containers (sparse bit vector, union-find,
// BDD).
//
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "analysis/OneLevelFlow.h"
#include "analysis/Steensgaard.h"
#include "bdd/Bdd.h"
#include "core/RelevantStatements.h"
#include "frontend/Diagnostics.h"
#include "frontend/Lower.h"
#include "fscs/ClusterAliasAnalysis.h"
#include "ir/CallGraph.h"
#include "support/SparseBitVector.h"
#include "support/UnionFind.h"
#include "workload/ProgramGenerator.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <random>

using namespace bsaa;

namespace {

/// One cached program per size so generation/parsing stays outside the
/// measured region.
const ir::Program &programOfSize(int64_t Functions) {
  static std::map<int64_t, std::unique_ptr<ir::Program>> Cache;
  auto It = Cache.find(Functions);
  if (It == Cache.end()) {
    workload::GeneratorConfig Cfg;
    Cfg.Seed = 42;
    Cfg.NumFunctions = static_cast<uint32_t>(Functions);
    Cfg.Communities = std::max<uint32_t>(2, uint32_t(Functions / 4));
    frontend::Diagnostics Diags;
    auto P = frontend::compileString(workload::generateProgram(Cfg), Diags);
    if (!P)
      std::abort();
    It = Cache.emplace(Functions, std::move(P)).first;
  }
  return *It->second;
}

} // namespace

//===--------------------------------------------------------------------===//
// Baseline analyses
//===--------------------------------------------------------------------===//

static void BM_Steensgaard(benchmark::State &State) {
  const ir::Program &P = programOfSize(State.range(0));
  for (auto _ : State) {
    analysis::SteensgaardAnalysis S(P);
    S.run();
    benchmark::DoNotOptimize(S.numPartitions());
  }
  State.SetLabel(std::to_string(P.numPointers()) + " pointers");
}
BENCHMARK(BM_Steensgaard)->Arg(16)->Arg(64)->Arg(256);

static void BM_Andersen(benchmark::State &State) {
  const ir::Program &P = programOfSize(State.range(0));
  for (auto _ : State) {
    analysis::AndersenAnalysis A(P);
    A.run();
    benchmark::DoNotOptimize(A.iterations());
  }
  State.SetLabel(std::to_string(P.numPointers()) + " pointers");
}
BENCHMARK(BM_Andersen)->Arg(16)->Arg(64)->Arg(256);

static void BM_AndersenNoCycleElim(benchmark::State &State) {
  const ir::Program &P = programOfSize(State.range(0));
  analysis::AndersenAnalysis::Options Opts;
  Opts.CycleElimination = false;
  for (auto _ : State) {
    analysis::AndersenAnalysis A(P, Opts);
    A.run();
    benchmark::DoNotOptimize(A.iterations());
  }
}
BENCHMARK(BM_AndersenNoCycleElim)->Arg(64)->Arg(256);

static void BM_OneLevelFlow(benchmark::State &State) {
  const ir::Program &P = programOfSize(State.range(0));
  for (auto _ : State) {
    analysis::OneLevelFlow F(P);
    F.run();
    benchmark::DoNotOptimize(F.rounds());
  }
}
BENCHMARK(BM_OneLevelFlow)->Arg(16)->Arg(64)->Arg(256);

//===--------------------------------------------------------------------===//
// Algorithm 1 and per-cluster FSCS
//===--------------------------------------------------------------------===//

static void BM_RelevantStatements(benchmark::State &State) {
  const ir::Program &P = programOfSize(State.range(0));
  analysis::SteensgaardAnalysis S(P);
  S.run();
  core::SliceIndex Index(P, S);
  // Slice the largest partition.
  uint32_t Best = 0, BestSize = 0;
  for (uint32_t Part = 0; Part < S.numPartitions(); ++Part)
    if (S.partitionPointerCount(Part) > BestSize) {
      Best = Part;
      BestSize = S.partitionPointerCount(Part);
    }
  for (auto _ : State) {
    core::RelevantSlice Slice = core::computeRelevantStatements(
        P, S, S.partitionMembers(Best), Index);
    benchmark::DoNotOptimize(Slice.Statements.size());
  }
  State.SetLabel("partition of " + std::to_string(BestSize) + " pointers");
}
BENCHMARK(BM_RelevantStatements)->Arg(64)->Arg(256);

static void BM_FscsClusterQuery(benchmark::State &State) {
  const ir::Program &P = programOfSize(State.range(0));
  static std::map<int64_t, std::unique_ptr<ir::CallGraph>> CGs;
  if (!CGs.count(State.range(0)))
    CGs[State.range(0)] = std::make_unique<ir::CallGraph>(P);
  analysis::SteensgaardAnalysis S(P);
  S.run();
  core::SliceIndex Index(P, S);
  uint32_t Best = 0, BestSize = 0;
  for (uint32_t Part = 0; Part < S.numPartitions(); ++Part)
    if (S.partitionPointerCount(Part) > BestSize) {
      Best = Part;
      BestSize = S.partitionPointerCount(Part);
    }
  core::Cluster C;
  C.Members = S.partitionMembers(Best);
  core::attachRelevantSlice(P, S, C, Index);
  ir::VarId Query = ir::InvalidVar;
  for (ir::VarId V : C.Members)
    if (P.var(V).isPointer())
      Query = V;
  ir::LocId At = P.func(P.entryFunction()).Exit;

  for (auto _ : State) {
    fscs::ClusterAliasAnalysis AA(P, *CGs[State.range(0)], S, C);
    auto R = AA.pointsTo(Query, At);
    benchmark::DoNotOptimize(R.Objects.size());
  }
}
BENCHMARK(BM_FscsClusterQuery)->Arg(16)->Arg(64);

//===--------------------------------------------------------------------===//
// Support containers
//===--------------------------------------------------------------------===//

static void BM_SparseBitVectorUnion(benchmark::State &State) {
  std::mt19937 Rng(1);
  std::vector<SparseBitVector> Sets(64);
  for (SparseBitVector &S : Sets)
    for (int I = 0; I < State.range(0); ++I)
      S.set(Rng() % 100000);
  for (auto _ : State) {
    SparseBitVector Acc;
    for (const SparseBitVector &S : Sets)
      Acc.unionWith(S);
    benchmark::DoNotOptimize(Acc.count());
  }
}
BENCHMARK(BM_SparseBitVectorUnion)->Arg(16)->Arg(256)->Arg(4096);

static void BM_UnionFind(benchmark::State &State) {
  std::mt19937 Rng(2);
  uint32_t N = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    UnionFind UF(N);
    for (uint32_t I = 0; I < N; ++I)
      UF.unite(Rng() % N, Rng() % N);
    benchmark::DoNotOptimize(UF.numSets());
  }
}
BENCHMARK(BM_UnionFind)->Arg(1024)->Arg(65536);

static void BM_BddConjunction(benchmark::State &State) {
  for (auto _ : State) {
    bdd::BddManager M;
    bdd::BddRef F = bdd::BddTrue;
    for (int I = 0; I < State.range(0); ++I)
      F = M.bddAnd(F, I % 3 ? M.var(I) : M.nvar(I));
    benchmark::DoNotOptimize(M.satCount(F, uint32_t(State.range(0))));
  }
}
BENCHMARK(BM_BddConjunction)->Arg(16)->Arg(48);

BENCHMARK_MAIN();
