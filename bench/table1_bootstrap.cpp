//===- bench/table1_bootstrap.cpp - Table 1 reproduction ------------------===//
//
// Regenerates the paper's Table 1: flow- and context-sensitive alias
// analysis without clustering, with Steensgaard partitioning, and with
// bootstrapped Andersen clustering, over the 20-program suite.
//
// Columns mirror the paper:
//   Example, KLOC, #pointers,
//   Partitioning (Steensgaard solve time),
//   Clustering (bootstrapped Andersen clustering time),
//   Time(secs) FSCS without clustering (step budget plays the paper's
//     15-minute timeout),
//   Steensgaard: #cluster, Max, Time (5-part simulated parallel),
//   Andersen:    #cluster, Max, Time (5-part simulated parallel).
//
// Absolute numbers depend on the host and the synthetic workloads; the
// paper-shape claims to check are (a) clustering makes FSCS viable
// where the unclustered run times out, (b) Andersen clustering shrinks
// the max cluster where partitions overlap little (sendmail) and not
// where they overlap heavily (mt-daapd).
//
// Usage: table1_bootstrap [scale] [--stats-json] [--no-summary-cache]
//
// All three drivers per entry (unclustered baseline excepted by
// construction: its engine budget differs, so its key never collides)
// share one cross-cluster summary cache and one Algorithm-1 slice
// cache; --no-summary-cache detaches both for the ablation control and
// --stats-json dumps the final Andersen run's BootstrapResult with the
// cumulative cache counters.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/BootstrapDriver.h"
#include "support/Timer.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace bsaa;
using namespace bsaa::bench;

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  bool UseCache = true;
  for (int I = 1; I < Argc;) {
    bool Strip = false;
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      Strip = true;
    } else if (std::strcmp(Argv[I], "--no-summary-cache") == 0) {
      UseCache = false;
      Strip = true;
    }
    if (Strip) {
      // Hide the flag from the positional scale parser.
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
    } else {
      ++I;
    }
  }

  double Scale = scaleFromArgs(Argc, Argv, 0.25);

  auto SummaryCache =
      UseCache ? std::make_shared<fscs::SummaryCache>() : nullptr;
  auto SliceCache =
      UseCache ? std::make_shared<core::SliceCache>() : nullptr;
  core::BootstrapResult LastRun;
  uint64_t ClusterBudget = 30000;
  uint64_t UnclusteredBudget = 1000000;

  std::printf("Table 1: FSCS alias analysis without clustering vs. "
              "Steensgaard and Andersen clustering (suite scale %.2f)\n",
              Scale);
  std::printf("%-16s %6s %9s | %12s %10s | %10s | %28s | %28s\n", "Example",
              "KLOC", "#pointers", "Partitioning", "Clustering",
              "no-cluster", "Steensgaard (#clu  Max  Time)",
              "Andersen    (#clu  Max  Time)");

  for (const workload::SuiteEntry &Entry : workload::table1Suite(Scale)) {
    std::unique_ptr<ir::Program> P = compileEntry(Entry);

    // Column 6: FSCS on the whole program (budgeted).
    core::BootstrapOptions UnclusteredOpts;
    UnclusteredOpts.EngineOpts.StepBudget = UnclusteredBudget;
    core::BootstrapDriver Unclustered(*P, UnclusteredOpts);
    core::ClusterRunResult NoClu = Unclustered.runUnclustered();

    // Columns 8-9: Steensgaard partitions only.
    core::BootstrapOptions SteensOpts;
    SteensOpts.AndersenThreshold = UINT32_MAX;
    SteensOpts.EngineOpts.StepBudget = ClusterBudget;
    SteensOpts.SummaryCache = SummaryCache;
    SteensOpts.RelevantSliceCache = SliceCache;
    core::BootstrapDriver SteensDriver(*P, SteensOpts);
    core::BootstrapResult SteensRun = SteensDriver.runAll();

    // Columns 11-12: bootstrapped Andersen clustering (threshold 60).
    // Sub-threshold Steensgaard partitions survive refinement unchanged
    // and replay from the summary cache warmed by the previous run.
    core::BootstrapOptions AndOpts;
    AndOpts.AndersenThreshold = 60;
    AndOpts.EngineOpts.StepBudget = ClusterBudget;
    AndOpts.SummaryCache = SummaryCache;
    AndOpts.RelevantSliceCache = SliceCache;
    core::BootstrapDriver AndDriver(*P, AndOpts);
    core::BootstrapResult AndRun = AndDriver.runAll();

    std::printf("%-16s %6.1f %9u | %12.3f %10.3f | %10s | %7u %5u %9s | "
                "%7u %5u %9s\n",
                Entry.Name.c_str(), Entry.PaperKloc, P->numPointers(),
                SteensRun.SteensgaardSeconds,
                AndRun.AndersenClusteringSeconds,
                formatSeconds(NoClu.Seconds, NoClu.BudgetHit).c_str(),
                SteensRun.NumClusters, SteensRun.MaxClusterSize,
                formatSeconds(SteensRun.SimulatedParallelSeconds,
                              SteensRun.AnyBudgetHit)
                    .c_str(),
                AndRun.NumClusters, AndRun.MaxClusterSize,
                formatSeconds(AndRun.SimulatedParallelSeconds,
                              AndRun.AnyBudgetHit)
                    .c_str());
    std::fflush(stdout);
    LastRun = std::move(AndRun);
  }

  std::printf("\n(step budgets: %" PRIu64 " per cluster, %" PRIu64
              " unclustered; '>' marks a budget-limited run, the "
              "paper's '>15min')\n",
              ClusterBudget, UnclusteredBudget);
  if (UseCache) {
    support::CacheCounters C = SummaryCache->counters();
    std::printf("(summary cache: %" PRIu64 " hits / %" PRIu64
                " misses, hit rate %.2f; --no-summary-cache disables)\n",
                C.Hits, C.Misses, C.hitRate());
  }

  if (StatsJson)
    std::fputs(core::toStatsJson(LastRun).c_str(), stdout);
  return 0;
}
