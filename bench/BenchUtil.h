//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
//
// Part of the bsaa project (Kahlon, PLDI 2008 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table / figure / ablation benches: compile a
/// suite entry, format seconds the way the paper's Table 1 does
/// (including the ">15min"-style budget markers).
///
//===----------------------------------------------------------------------===//

#ifndef BSAA_BENCH_BENCHUTIL_H
#define BSAA_BENCH_BENCHUTIL_H

#include "frontend/Diagnostics.h"
#include "frontend/Lower.h"
#include "ir/Ir.h"
#include "workload/BenchmarkSuite.h"
#include "workload/ProgramGenerator.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace bsaa {
namespace bench {

/// Generates and compiles one suite entry; aborts on failure.
inline std::unique_ptr<ir::Program>
compileEntry(const workload::SuiteEntry &Entry) {
  std::string Src = workload::generateProgram(Entry.Config);
  frontend::Diagnostics Diags;
  std::unique_ptr<ir::Program> P = frontend::compileString(Src, Diags);
  if (!P) {
    std::fprintf(stderr, "error: generated program for '%s' failed:\n%s\n",
                 Entry.Name.c_str(), Diags.toString().c_str());
    std::abort();
  }
  return P;
}

/// Formats seconds; budget-limited runs render as "> Xs" the way the
/// paper prints "> 15min".
inline std::string formatSeconds(double Seconds, bool BudgetHit) {
  char Buf[32];
  if (BudgetHit)
    std::snprintf(Buf, sizeof(Buf), ">%.1f", Seconds);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f", Seconds);
  return Buf;
}

/// Suite scale from argv (argument 1), defaulting to \p Default.
inline double scaleFromArgs(int Argc, char **Argv, double Default) {
  if (Argc > 1) {
    double S = std::atof(Argv[1]);
    if (S > 0)
      return S;
  }
  return Default;
}

} // namespace bench
} // namespace bsaa

#endif // BSAA_BENCH_BENCHUTIL_H
