//===- bench/fig3_relevant_stmts.cpp - Figure 3 reproduction --------------===//
//
// Regenerates the paper's Figure 3 narrative: for the partition
// P = {a, b}, Algorithm 1 must pull 1a, 2a and 4a into St_P but exclude
// 3a (p = x does not affect aliases of a or b).
//
//===----------------------------------------------------------------------===//

#include "analysis/Steensgaard.h"
#include "core/RelevantStatements.h"
#include "frontend/Diagnostics.h"
#include "frontend/Lower.h"
#include "ir/Dumper.h"

#include <algorithm>
#include <cstdio>

using namespace bsaa;

int main() {
  const char *Src = R"(
    void main(void) {
      int a; int b;
      int *x; int *y; int *p;
      1a: x = &a;
      2a: y = &b;
      3a: p = x;
      4a: *x = *y;
    }
  )";
  frontend::Diagnostics Diags;
  auto P = frontend::compileString(Src, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.toString().c_str());
    return 1;
  }

  std::printf("Figure 3: identifying relevant statements (Algorithm 1)\n");
  std::printf("program:\n%s\n", Src);

  analysis::SteensgaardAnalysis S(*P);
  S.run();
  uint32_t Part = S.partitionOf(P->findVariable("main::a"));
  std::printf("partition P of {a}: {");
  bool First = true;
  for (ir::VarId V : S.partitionMembers(Part)) {
    std::printf("%s%s", First ? "" : ", ", P->var(V).Name.c_str());
    First = false;
  }
  std::printf("}\n\n");

  core::RelevantSlice Slice = core::computeRelevantStatements(
      *P, S, S.partitionMembers(Part));

  std::printf("V_P (tracked refs):\n");
  for (ir::Ref R : Slice.TrackedRefs)
    std::printf("  %s\n", ir::refToString(*P, R).c_str());

  std::printf("\nSt_P (relevant statements):\n");
  for (ir::LocId L : Slice.Statements) {
    const ir::Location &Loc = P->loc(L);
    std::printf("  L%u%s%s: %s\n", L, Loc.Label.empty() ? "" : " ",
                Loc.Label.c_str(), ir::dumpStatement(*P, L).c_str());
  }

  ir::LocId Excluded = P->findLabel("3a");
  bool In = std::find(Slice.Statements.begin(), Slice.Statements.end(),
                      Excluded) != Slice.Statements.end();
  std::printf("\nstatement 3a (p = x) in St_P: %s  (paper: excluded)\n",
              In ? "YES (BUG)" : "no");
  return In ? 1 : 0;
}
