//===- bench/serving_load.cpp - Multi-tenant serving load harness ---------===//
//
// Load generator for serving/TenantRegistry.h: K tenants, each with its
// own synthetic program and deterministic edit stream, served
// concurrently -- one client thread per tenant replays mixed traffic
// (submit the next program version, then a burst of may-alias query
// batches) while the registry's shared drain pool re-analyzes whatever
// is queued. Reported per tenant and in aggregate:
//
//   * sustained queries/sec over the whole load phase, and the
//     registry's own p50/p95/p99 per-query latency (recorded inside the
//     serving layer, so it includes materialization stalls);
//   * edit-queue accounting: accepted, coalesced (superseded versions
//     never analyzed), rejected (backpressure), applied (published);
//   * the differential oracle: after the load phase, every tenant's
//     served verdicts are replayed on a *cold* single-tenant
//     AliasService fed exactly the versions the registry analyzed
//     (appliedTags) -- the served snapshot must answer the identical
//     query batch identically. CI gates on all_tenants_identical.
//
// Backpressure is part of the workload: with bursty submission and a
// small queue, some versions coalesce and some reject; the oracle is
// built on appliedTags precisely so the comparison is immune to which
// versions admission control dropped.
//
// Usage: serving_load [scale] [--tenants K] [--edits N] [--stats-json]
//
// --stats-json appends one machine-readable JSON line on stdout -- CI
// parses the last line and uploads the file as an artifact.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "serving/TenantRegistry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace bsaa;
using namespace bsaa::bench;

namespace {

/// The editable workload of bench/ablation_incremental.cpp; each tenant
/// gets its own seed, so no two tenants analyze the same program.
workload::GeneratorConfig tenantConfig(double Scale, uint32_t TenantIdx) {
  workload::GeneratorConfig Cfg;
  Cfg.Seed = 42 + 1000 * static_cast<uint64_t>(TenantIdx);
  Cfg.NumFunctions = static_cast<uint32_t>(60 * Scale);
  if (Cfg.NumFunctions < 8)
    Cfg.NumFunctions = 8;
  Cfg.StmtsPerFunction = 16;
  Cfg.Communities = static_cast<uint32_t>(16 * Scale);
  if (Cfg.Communities < 4)
    Cfg.Communities = 4;
  Cfg.PointerFunctionPercent = 60;
  Cfg.WeightNoise = 20;
  Cfg.WeightCall = 4;
  Cfg.RecursionPercent = 0;
  Cfg.CrossCommunityBasisPoints = 0;
  return Cfg;
}

std::unique_ptr<ir::Program>
compileVersion(const workload::GeneratorConfig &Cfg,
               const workload::EditState &St) {
  std::string Src = workload::generateProgram(Cfg, St);
  frontend::Diagnostics Diags;
  std::unique_ptr<ir::Program> P = frontend::compileString(Src, Diags);
  if (!P) {
    std::fprintf(stderr, "error: generated version failed to compile:\n%s\n",
                 Diags.toString().c_str());
    std::abort();
  }
  return P;
}

/// Everything one tenant's client thread needs. Edit states and the
/// query batch are precomputed; the client compiles each submitted
/// version itself (an edit in a real serving setup arrives as a new
/// program, so the compile rides the edit path -- query latency is
/// recorded inside the registry and never includes it).
struct TenantPlan {
  workload::GeneratorConfig Cfg;
  /// Version v = initial program after the first v edits; version 0 is
  /// the pristine program.
  std::vector<workload::EditState> States;
  std::vector<std::string> Touched; ///< Coalescing tag per version >= 1.
  /// Query batch over variable ids valid in *every* version (ids below
  /// the minimum numVars; stub edits shrink the program).
  std::vector<query::MayAliasQuery> Batch;
};

TenantPlan makePlan(double Scale, uint32_t TenantIdx, uint32_t NumEdits) {
  TenantPlan Plan;
  Plan.Cfg = tenantConfig(Scale, TenantIdx);
  std::vector<workload::ProgramEdit> Edits = workload::generateEditStream(
      Plan.Cfg, NumEdits, /*StreamSeed=*/7 + TenantIdx);

  workload::EditState St = workload::initialEditState(Plan.Cfg);
  Plan.States.push_back(St);
  Plan.Touched.push_back(""); // Version 0 has no edited function.
  for (const workload::ProgramEdit &E : Edits) {
    workload::applyEdit(St, E);
    Plan.States.push_back(St);
    Plan.Touched.push_back(workload::editedFunctionName(E));
  }

  // Ids valid across all versions: compile each once (setup only) and
  // take pointer vars of version 0 below the global minimum.
  uint32_t MinVars = UINT32_MAX;
  for (const workload::EditState &S : Plan.States)
    MinVars = std::min(MinVars, compileVersion(Plan.Cfg, S)->numVars());
  std::unique_ptr<ir::Program> V0 = compileVersion(Plan.Cfg, Plan.States[0]);
  std::vector<ir::VarId> Ptrs;
  for (ir::VarId V = 0; V < MinVars; ++V)
    if (V0->var(V).isPointer())
      Ptrs.push_back(V);
  for (size_t I = 0; I < Ptrs.size(); ++I)
    for (size_t J = I + 1; J < Ptrs.size() && Plan.Batch.size() < 512; ++J)
      Plan.Batch.push_back({Ptrs[I], Ptrs[J], ir::InvalidLoc});
  return Plan;
}

} // namespace

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  uint32_t NumTenants = 4;
  uint32_t NumEdits = 20;
  for (int I = 1; I < Argc;) {
    int Strip = 0;
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      Strip = 1;
    } else if (std::strcmp(Argv[I], "--tenants") == 0 && I + 1 < Argc) {
      NumTenants = static_cast<uint32_t>(std::atoi(Argv[I + 1]));
      Strip = 2;
    } else if (std::strcmp(Argv[I], "--edits") == 0 && I + 1 < Argc) {
      NumEdits = static_cast<uint32_t>(std::atoi(Argv[I + 1]));
      Strip = 2;
    }
    if (Strip) {
      for (int J = I; J + Strip < Argc; ++J)
        Argv[J] = Argv[J + Strip];
      Argc -= Strip;
    } else {
      ++I;
    }
  }
  double Scale = scaleFromArgs(Argc, Argv, 0.25);
  if (NumTenants < 1)
    NumTenants = 1;

  std::printf("serving_load: %u tenants, %u edits each, scale %.2f\n",
              NumTenants, NumEdits, Scale);

  // Setup (untimed): per-tenant plans, registry, initial versions.
  std::vector<TenantPlan> Plans;
  for (uint32_t T = 0; T < NumTenants; ++T)
    Plans.push_back(makePlan(Scale, T, NumEdits));

  serving::ServingOptions SOpts;
  SOpts.BOpts.AndersenThreshold = 60;
  SOpts.BOpts.EngineOpts.StepBudget = 50000;
  SOpts.DrainThreads = 2;
  SOpts.EditQueueCapacity = 4; // Small on purpose: backpressure is load.
  serving::TenantRegistry Reg(SOpts);

  for (uint32_t T = 0; T < NumTenants; ++T) {
    serving::TenantId Id = Reg.addTenant("tenant" + std::to_string(T));
    serving::SubmitStatus S = Reg.submitEdit(
        Id, compileVersion(Plans[T].Cfg, Plans[T].States[0]), "", /*Tag=*/0);
    if (S != serving::SubmitStatus::Accepted) {
      std::fprintf(stderr, "error: initial version rejected (%s)\n",
                   serving::submitStatusName(S));
      return 1;
    }
  }
  Reg.waitIdle();

  // Load phase: one client thread per tenant, each interleaving
  // submissions (bursty: two versions back to back every other round,
  // so coalescing and backpressure actually fire) with query batches.
  std::vector<uint64_t> QueriesIssued(NumTenants, 0);
  Timer LoadT;
  {
    std::vector<std::thread> Clients;
    for (uint32_t T = 0; T < NumTenants; ++T) {
      Clients.emplace_back([T, &Plans, &Reg, &QueriesIssued] {
        const TenantPlan &Plan = Plans[T];
        uint32_t NextVersion = 1;
        while (NextVersion < Plan.States.size()) {
          uint32_t Burst =
              (NextVersion % 2 == 1 && NextVersion + 1 < Plan.States.size())
                  ? 2
                  : 1;
          for (uint32_t B = 0; B < Burst; ++B, ++NextVersion) {
            (void)Reg.submitEdit(
                T, compileVersion(Plan.Cfg, Plan.States[NextVersion]),
                Plan.Touched[NextVersion], /*Tag=*/NextVersion);
          }
          for (int Round = 0; Round < 4; ++Round) {
            (void)Reg.evalMayAlias(T, Plan.Batch);
            QueriesIssued[T] += Plan.Batch.size();
          }
        }
      });
    }
    for (std::thread &C : Clients)
      C.join();
  }
  Reg.waitIdle();
  double LoadSeconds = LoadT.seconds();

  // Differential oracle: a cold single-tenant AliasService fed exactly
  // the versions the registry analyzed must answer the batch exactly
  // as the served snapshot does.
  bool AllIdentical = true;
  for (uint32_t T = 0; T < NumTenants; ++T) {
    core::BootstrapOptions B;
    B.AndersenThreshold = SOpts.BOpts.AndersenThreshold;
    B.EngineOpts = SOpts.BOpts.EngineOpts;
    query::AliasService Cold(B);
    for (uint64_t Tag : Reg.appliedTags(T))
      Cold.update(compileVersion(Plans[T].Cfg,
                                 Plans[T].States[static_cast<size_t>(Tag)]));
    std::vector<uint8_t> Want = Cold.engine().evalMayAlias(Plans[T].Batch, 0);
    std::vector<uint8_t> Got = Reg.evalMayAlias(T, Plans[T].Batch);
    if (Want != Got) {
      AllIdentical = false;
      std::fprintf(stderr, "error: tenant %u diverged from cold replay\n", T);
    }
  }

  uint64_t TotalQueries = 0, Accepted = 0, Coalesced = 0, Rejected = 0,
           Applied = 0;
  double WorstP99 = 0;
  std::printf("  %-10s %8s %9s %9s %8s %8s %9s %9s %9s\n", "tenant",
              "queries", "accepted", "coalesced", "rejected", "applied",
              "p50 ms", "p99 ms", "pub p99");
  for (uint32_t T = 0; T < NumTenants; ++T) {
    serving::TenantStats St = Reg.stats(T);
    TotalQueries += St.Queries;
    Accepted += St.EditsAccepted;
    Coalesced += St.EditsCoalesced;
    Rejected += St.EditsRejected;
    Applied += St.EditsApplied;
    // Quantiles are optional now (null for an idle tenant); every
    // tenant here served traffic, so treat a missing p99 as a failed
    // oracle rather than a vacuous 0.
    if (!St.QueryP99Ms || !St.PublishP99Ms) {
      AllIdentical = false;
      std::fprintf(stderr, "error: tenant %u missing latency quantiles\n", T);
    }
    WorstP99 = std::max(WorstP99, St.QueryP99Ms.value_or(0.0));
    std::printf("  %-10s %8llu %9llu %9llu %8llu %8llu %9.3f %9.3f %9.1f\n",
                St.Name.c_str(), (unsigned long long)St.Queries,
                (unsigned long long)St.EditsAccepted,
                (unsigned long long)St.EditsCoalesced,
                (unsigned long long)St.EditsRejected,
                (unsigned long long)St.EditsApplied,
                St.QueryP50Ms.value_or(0.0), St.QueryP99Ms.value_or(0.0),
                St.PublishP99Ms.value_or(0.0));
  }
  double Qps = LoadSeconds > 0
                   ? static_cast<double>(TotalQueries) / LoadSeconds
                   : 0.0;
  std::printf("  load phase: %.2fs, %llu queries (%.0f q/s sustained), "
              "worst tenant p99 %.3f ms\n",
              LoadSeconds, (unsigned long long)TotalQueries, Qps, WorstP99);
  std::printf("  oracle: %s\n", AllIdentical
                                    ? "every tenant identical to cold replay"
                                    : "DIVERGENCE DETECTED");

  if (StatsJson)
    std::printf("{\"bench\": \"serving_load\", \"scale\": %.3f, "
                "\"tenants\": %u, \"edits_per_tenant\": %u, "
                "\"all_tenants_identical\": %s, "
                "\"load_seconds\": %.6f, \"queries\": %llu, \"qps\": %.0f, "
                "\"p99_ms\": %.4f, \"edits\": {\"accepted\": %llu, "
                "\"coalesced\": %llu, \"rejected\": %llu, "
                "\"applied\": %llu}}\n",
                Scale, NumTenants, NumEdits, AllIdentical ? "true" : "false",
                LoadSeconds, (unsigned long long)TotalQueries, Qps, WorstP99,
                (unsigned long long)Accepted, (unsigned long long)Coalesced,
                (unsigned long long)Rejected, (unsigned long long)Applied);
  return AllIdentical ? 0 : 1;
}
