//===- bench/fig2_pointsto_graphs.cpp - Figure 2 reproduction -------------===//
//
// Regenerates the paper's Figure 2: the Steensgaard and Andersen
// points-to graphs for the five-assignment example program. Expected
// shapes: Steensgaard has one node {p,q,r} pointing at one node
// {a,b,c}; Andersen keeps p -> {a}, r -> {c}, q -> {a,b,c} (the node
// for q has out-degree three).
//
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "analysis/Steensgaard.h"
#include "frontend/Diagnostics.h"
#include "frontend/Lower.h"
#include "support/GraphWriter.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace bsaa;

int main() {
  const char *Src = R"(
    void main(void) {
      int a; int b; int c;
      int *p; int *q; int *r;
      1a: p = &a;
      2a: q = &b;
      3a: r = &c;
      4a: q = p;
      5a: q = r;
    }
  )";
  frontend::Diagnostics Diags;
  auto P = frontend::compileString(Src, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.toString().c_str());
    return 1;
  }

  std::printf("Figure 2: Steensgaard vs. Andersen points-to graphs\n");
  std::printf("program:\n%s\n", Src);

  analysis::SteensgaardAnalysis S(*P);
  S.run();
  std::printf("Steensgaard partitions and edges:\n");
  GraphWriter SteensDot("steensgaard");
  for (uint32_t Part = 0; Part < S.numPartitions(); ++Part) {
    std::string Label;
    uint32_t Pointers = 0;
    for (ir::VarId V : S.partitionMembers(Part)) {
      const ir::Variable &Var = P->var(V);
      if (Var.Kind != ir::VarKind::Local && Var.Kind != ir::VarKind::Global)
        continue;
      if (!Label.empty())
        Label += ", ";
      Label += Var.Name.substr(Var.Name.rfind(':') + 1);
      Pointers += Var.isPointer();
    }
    if (Label.empty())
      continue;
    std::printf("  {%s}", Label.c_str());
    uint32_t Succ = S.pointsToPartition(Part);
    if (Succ != analysis::InvalidPartition)
      std::printf("  -> partition %u", Succ);
    std::printf("\n");
    SteensDot.addNode("n" + std::to_string(Part), "{" + Label + "}");
    if (Succ != analysis::InvalidPartition)
      SteensDot.addEdge("n" + std::to_string(Part),
                        "n" + std::to_string(Succ));
  }

  analysis::AndersenAnalysis A(*P);
  A.run();
  std::printf("\nAndersen points-to sets:\n");
  GraphWriter AndDot("andersen");
  for (ir::VarId V = 0; V < P->numVars(); ++V) {
    const ir::Variable &Var = P->var(V);
    if (!Var.isPointer() || Var.Kind == ir::VarKind::Temp)
      continue;
    std::string Name = Var.Name.substr(Var.Name.rfind(':') + 1);
    std::printf("  %s -> {", Name.c_str());
    bool First = true;
    AndDot.addNode(Name, Name);
    for (ir::VarId O : A.pointsToVars(V)) {
      std::string TargetName = P->var(O).Name;
      TargetName = TargetName.substr(TargetName.rfind(':') + 1);
      std::printf("%s%s", First ? "" : ", ", TargetName.c_str());
      AndDot.addNode(TargetName, TargetName);
      AndDot.addEdge(Name, TargetName);
      First = false;
    }
    std::printf("}\n");
  }

  std::printf("\nDOT (Steensgaard):\n%s", SteensDot.str().c_str());
  std::printf("\nDOT (Andersen):\n%s", AndDot.str().c_str());
  return 0;
}
