//===- bench/query_throughput.cpp - Query-serving throughput --------------===//
//
// Measures the QueryEngine against the naive way of answering the same
// questions -- a whole-program FSCS pair loop (what
// analysis::countMayAliasPairs does, lifted to the FSCS engine): every
// may-alias pair query is answered by the monolithic analysis with no
// index and no clustering.
//
// The engine answers the identical query set through the inverted
// pointer->cluster index (cross-cluster pairs short-circuit without
// touching FSCS data) and lazily materialized per-cluster analyses
// (adopted from the cascade's summary cache). Reported:
//
//   * naive whole-program pair loop (cold engine, one prepare),
//   * QueryEngine cold (first pass: materialization included),
//   * QueryEngine warm (second pass over the same pairs),
//   * QueryEngine warm, multi-threaded batch.
//
// Usage: query_throughput [scale] [--stats-json]
//
// --stats-json appends a machine-readable JSON document (timings,
// queries/sec, answer-source breakdown) on stdout -- CI uploads it as
// an artifact.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/AliasCover.h"
#include "core/BootstrapDriver.h"
#include "query/QueryEngine.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

using namespace bsaa;
using namespace bsaa::bench;

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
      break;
    }
  }

  double Scale = scaleFromArgs(Argc, Argv, 0.25);
  workload::SuiteEntry Entry = workload::suiteEntry("autofs", Scale);
  std::shared_ptr<ir::Program> P(compileEntry(Entry));

  // The cascade the snapshot serves from; the shared summary cache is
  // what lets materialization replay instead of re-analyze.
  core::BootstrapOptions BOpts;
  BOpts.SummaryCache = std::make_shared<fscs::SummaryCache>();
  core::BootstrapDriver Driver(*P, BOpts);
  Driver.steensgaard();
  std::vector<core::Cluster> Cover = Driver.buildCover();
  Timer CascadeT;
  core::BootstrapResult Result = Driver.runAll(Cover);
  double CascadeSeconds = CascadeT.seconds();

  // The query set: every pointer pair, at its canonical location.
  std::vector<ir::VarId> Ptrs;
  for (ir::VarId V = 0; V < P->numVars(); ++V)
    if (P->var(V).isPointer())
      Ptrs.push_back(V);
  std::vector<query::MayAliasQuery> Batch;
  for (size_t I = 0; I < Ptrs.size(); ++I)
    for (size_t J = I + 1; J < Ptrs.size(); ++J)
      Batch.push_back({Ptrs[I], Ptrs[J], ir::InvalidLoc});
  size_t NumPairs = Batch.size();

  // Naive baseline: the monolithic FSCS analysis answers every pair.
  uint64_t NaiveAliases = 0;
  Timer NaiveT;
  {
    core::Cluster Whole = core::wholeProgramCluster(*P);
    fscs::ClusterAliasAnalysis WholeAA(*P, Driver.callGraph(),
                                       Driver.steensgaard(), Whole);
    for (const query::MayAliasQuery &Q : Batch) {
      ir::LocId Loc = query::canonicalAliasLoc(*P, Q.A, Q.B);
      if (Loc != ir::InvalidLoc && WholeAA.mayAlias(Q.A, Q.B, Loc))
        ++NaiveAliases;
    }
  }
  double NaiveSeconds = NaiveT.seconds();

  // Engine: cold pass (materialization on demand), warm pass, warm
  // multi-threaded batch -- all over the identical query set.
  query::QueryOptions QOpts;
  QOpts.EngineOpts = BOpts.EngineOpts;
  query::QueryEngine Engine;
  Engine.publish(query::QuerySnapshot::build(P, std::move(Cover),
                                             &Result.Clusters, QOpts,
                                             BOpts.SummaryCache));

  Timer ColdT;
  std::vector<uint8_t> ColdAnswers = Engine.evalMayAlias(Batch, 0);
  double ColdSeconds = ColdT.seconds();
  uint64_t EngineAliases = 0;
  for (uint8_t A : ColdAnswers)
    EngineAliases += A;

  Timer WarmT;
  (void)Engine.evalMayAlias(Batch, 0);
  double WarmSeconds = WarmT.seconds();

  unsigned HW = std::thread::hardware_concurrency();
  unsigned Threads = HW > 1 ? HW : 2;
  Timer MtT;
  (void)Engine.evalMayAlias(Batch, Threads);
  double MtSeconds = MtT.seconds();

  query::SnapshotStats St = Engine.snapshot()->stats();
  auto Qps = [NumPairs](double S) {
    return S > 0 ? static_cast<double>(NumPairs) / S : 0.0;
  };
  double Speedup = ColdSeconds > 0 ? NaiveSeconds / ColdSeconds : 0.0;

  std::printf("Query throughput on autofs (scale %.2f): %zu pointers, "
              "%zu pairs, %zu clusters (cascade %.3fs)\n",
              Scale, Ptrs.size(), NumPairs, Result.Clusters.size(),
              CascadeSeconds);
  std::printf("  %-26s %10s %14s\n", "configuration", "seconds",
              "queries/sec");
  std::printf("  %-26s %10.3f %14.0f\n", "naive whole-program loop",
              NaiveSeconds, Qps(NaiveSeconds));
  std::printf("  %-26s %10.3f %14.0f\n", "engine cold (1 thread)",
              ColdSeconds, Qps(ColdSeconds));
  std::printf("  %-26s %10.3f %14.0f\n", "engine warm (1 thread)",
              WarmSeconds, Qps(WarmSeconds));
  std::printf("  %-26s %10.3f %14.0f\n",
              ("engine warm (" + std::to_string(Threads) + " threads)")
                  .c_str(),
              MtSeconds, Qps(MtSeconds));
  std::printf("  speedup vs naive (cold): %.1fx; aliases found: naive "
              "%llu, engine %llu\n",
              Speedup, (unsigned long long)NaiveAliases,
              (unsigned long long)EngineAliases);
  std::printf("  answers: index %llu, fscs %llu, andersen %llu, "
              "steensgaard %llu; materialized %llu (%llu adopted, "
              "%llu evicted)\n",
              (unsigned long long)St.IndexAnswers,
              (unsigned long long)St.FscsAnswers,
              (unsigned long long)St.AndersenAnswers,
              (unsigned long long)St.SteensgaardAnswers,
              (unsigned long long)St.Materializations,
              (unsigned long long)St.CacheAdoptions,
              (unsigned long long)St.Evictions);

  if (StatsJson)
    std::printf(
        "{\"bench\": \"query_throughput\", \"scale\": %.3f, "
        "\"pointers\": %zu, \"pairs\": %zu, \"clusters\": %zu, "
        "\"cascade_seconds\": %.6f, \"naive_seconds\": %.6f, "
        "\"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
        "\"warm_mt_seconds\": %.6f, \"threads\": %u, "
        "\"speedup_vs_naive\": %.2f, \"qps_cold\": %.0f, "
        "\"qps_warm\": %.0f, \"qps_warm_mt\": %.0f, "
        "\"aliases_naive\": %llu, \"aliases_engine\": %llu, "
        "\"answers\": {\"index\": %llu, \"fscs\": %llu, "
        "\"andersen\": %llu, \"steensgaard\": %llu}, "
        "\"materializations\": %llu, \"cache_adoptions\": %llu, "
        "\"evictions\": %llu}\n",
        Scale, Ptrs.size(), NumPairs, Result.Clusters.size(),
        CascadeSeconds, NaiveSeconds, ColdSeconds, WarmSeconds, MtSeconds,
        Threads, Speedup, Qps(ColdSeconds), Qps(WarmSeconds),
        Qps(MtSeconds), (unsigned long long)NaiveAliases,
        (unsigned long long)EngineAliases,
        (unsigned long long)St.IndexAnswers,
        (unsigned long long)St.FscsAnswers,
        (unsigned long long)St.AndersenAnswers,
        (unsigned long long)St.SteensgaardAnswers,
        (unsigned long long)St.Materializations,
        (unsigned long long)St.CacheAdoptions,
        (unsigned long long)St.Evictions);
  return 0;
}
