//===- bench/query_throughput.cpp - Query-serving throughput --------------===//
//
// Measures the QueryEngine against the naive way of answering the same
// questions -- a whole-program FSCS pair loop (what
// analysis::countMayAliasPairs does, lifted to the FSCS engine): every
// may-alias pair query is answered by the monolithic analysis with no
// index and no clustering.
//
// The engine answers the identical query set through the inverted
// pointer->cluster index (cross-cluster pairs short-circuit without
// touching FSCS data) and lazily materialized per-cluster analyses
// (adopted from the cascade's summary cache). Reported:
//
//   * naive whole-program pair loop (cold engine, one prepare),
//   * QueryEngine cold (first pass: materialization included),
//   * QueryEngine warm (second pass over the same pairs),
//   * QueryEngine warm, multi-threaded batch.
//
// Usage: query_throughput [scale] [--stats-json] [--store DIR]
//                         [--cold-p99]
//
// --stats-json appends a machine-readable JSON document (timings,
// queries/sec, answer-source breakdown) on stdout -- CI uploads it as
// an artifact.
//
// --store DIR additionally runs the persistent-store restart ablation:
// a cold cascade with fresh caches writing through to the (initially
// empty) store at DIR, then a simulated restart -- all-fresh in-memory
// caches over a reopened store -- asserting the warm run is
// byte-identical in replayable stats and verdicts while reviving its
// summaries from disk. Exits nonzero on any divergence, so CI can gate
// on it directly.
//
// --cold-p99 runs the cold-cluster tail-latency ablation: the first
// touch of every cluster (one may-alias pair per cluster, no summary
// cache, so every materialization is genuinely cold) served by an
// eager snapshot vs a demand-mode snapshot with background promotion.
// Reports per-query p50/p99 for both, asserts every demand verdict
// equals the eager one (during the partial phase AND after promotions
// drain), and exits nonzero unless cold p99 improved at least 2x with
// zero mismatches -- the CI gate for the demand-serving path.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/AliasCover.h"
#include "core/BootstrapDriver.h"
#include "core/StoreCodecs.h"
#include "query/QueryEngine.h"
#include "support/LatencyHistogram.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace bsaa;
using namespace bsaa::bench;

namespace {

/// The restart shape: every in-memory cache fresh, the store shared.
core::BootstrapOptions storeBackedOptions(const std::string &Dir) {
  core::BootstrapOptions O;
  O.SummaryCache = std::make_shared<fscs::SummaryCache>();
  O.RelevantSliceCache = std::make_shared<core::SliceCache>();
  O.AndersenRefinementCache = std::make_shared<core::RefinementCache>();
  O.StorePath = Dir;
  core::openStoreAndAttach(O);
  return O;
}

std::string replayableJson(const core::BootstrapResult &R) {
  core::StatsJsonOptions O;
  O.IncludeTimings = false;
  O.IncludeCacheStats = false;
  return core::toStatsJson(R, O);
}

} // namespace

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  bool ColdP99 = false;
  std::string StoreDir;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
      --I;
    } else if (std::strcmp(Argv[I], "--cold-p99") == 0) {
      ColdP99 = true;
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
      --I;
    } else if (std::strcmp(Argv[I], "--store") == 0 && I + 1 < Argc) {
      StoreDir = Argv[I + 1];
      for (int J = I; J + 2 < Argc; ++J)
        Argv[J] = Argv[J + 2];
      Argc -= 2;
      --I;
    }
  }

  double Scale = scaleFromArgs(Argc, Argv, 0.25);
  workload::SuiteEntry Entry = workload::suiteEntry("autofs", Scale);
  std::shared_ptr<ir::Program> P(compileEntry(Entry));

  // The cascade the snapshot serves from; the shared summary cache is
  // what lets materialization replay instead of re-analyze.
  core::BootstrapOptions BOpts;
  BOpts.SummaryCache = std::make_shared<fscs::SummaryCache>();
  core::BootstrapDriver Driver(*P, BOpts);
  Driver.steensgaard();
  std::vector<core::Cluster> Cover = Driver.buildCover();
  Timer CascadeT;
  core::BootstrapResult Result = Driver.runAll(Cover);
  double CascadeSeconds = CascadeT.seconds();

  // The query set: every pointer pair, at its canonical location.
  std::vector<ir::VarId> Ptrs;
  for (ir::VarId V = 0; V < P->numVars(); ++V)
    if (P->var(V).isPointer())
      Ptrs.push_back(V);
  std::vector<query::MayAliasQuery> Batch;
  for (size_t I = 0; I < Ptrs.size(); ++I)
    for (size_t J = I + 1; J < Ptrs.size(); ++J)
      Batch.push_back({Ptrs[I], Ptrs[J], ir::InvalidLoc});
  size_t NumPairs = Batch.size();

  // Naive baseline: the monolithic FSCS analysis answers every pair.
  uint64_t NaiveAliases = 0;
  Timer NaiveT;
  {
    core::Cluster Whole = core::wholeProgramCluster(*P);
    fscs::ClusterAliasAnalysis WholeAA(*P, Driver.callGraph(),
                                       Driver.steensgaard(), Whole);
    for (const query::MayAliasQuery &Q : Batch) {
      ir::LocId Loc = query::canonicalAliasLoc(*P, Q.A, Q.B);
      if (Loc != ir::InvalidLoc && WholeAA.mayAlias(Q.A, Q.B, Loc))
        ++NaiveAliases;
    }
  }
  double NaiveSeconds = NaiveT.seconds();

  // The cold-p99 ablation needs its own cover: the main engine below
  // consumes Cover, and sharing materialized entries would defeat the
  // point of measuring first touches.
  std::vector<core::Cluster> ColdCover;
  if (ColdP99)
    ColdCover = Cover;

  // Engine: cold pass (materialization on demand), warm pass, warm
  // multi-threaded batch -- all over the identical query set.
  query::QueryOptions QOpts;
  QOpts.EngineOpts = BOpts.EngineOpts;
  query::QueryEngine Engine;
  Engine.publish(query::QuerySnapshot::build(P, std::move(Cover),
                                             &Result.Clusters, QOpts,
                                             BOpts.SummaryCache));

  Timer ColdT;
  std::vector<uint8_t> ColdAnswers = Engine.evalMayAlias(Batch, 0);
  double ColdSeconds = ColdT.seconds();
  uint64_t EngineAliases = 0;
  for (uint8_t A : ColdAnswers)
    EngineAliases += A;

  Timer WarmT;
  (void)Engine.evalMayAlias(Batch, 0);
  double WarmSeconds = WarmT.seconds();

  unsigned HW = std::thread::hardware_concurrency();
  unsigned Threads = HW > 1 ? HW : 2;
  Timer MtT;
  (void)Engine.evalMayAlias(Batch, Threads);
  double MtSeconds = MtT.seconds();

  query::SnapshotStats St = Engine.snapshot()->stats();
  auto Qps = [NumPairs](double S) {
    return S > 0 ? static_cast<double>(NumPairs) / S : 0.0;
  };
  double Speedup = ColdSeconds > 0 ? NaiveSeconds / ColdSeconds : 0.0;

  // Persistent-store restart ablation (--store DIR).
  bool StoreRun = !StoreDir.empty();
  double StoreColdSeconds = 0, StoreWarmSeconds = 0, StoreHitRate = 0;
  unsigned long long StorePuts = 0, StoreHits = 0;
  bool StoreStatsIdentical = false, StoreVerdictsIdentical = false;
  if (StoreRun) {
    // Cold lifetime: fresh caches over the (presumed empty) store.
    Statistics::global().clear();
    core::BootstrapOptions ColdO = storeBackedOptions(StoreDir);
    Timer ColdCascadeT;
    core::BootstrapDriver ColdD(*P, ColdO);
    ColdD.steensgaard();
    std::vector<core::Cluster> ColdCover = ColdD.buildCover();
    core::BootstrapResult ColdR = ColdD.runAll(ColdCover);
    StoreColdSeconds = ColdCascadeT.seconds();
    std::string ColdJson = replayableJson(ColdR);
    StorePuts = ColdO.SummaryCache->counters().StorePuts;

    // Warm restart: all-fresh caches, the store reopened from disk.
    Statistics::global().clear();
    core::BootstrapOptions WarmO = storeBackedOptions(StoreDir);
    Timer WarmCascadeT;
    core::BootstrapDriver WarmD(*P, WarmO);
    WarmD.steensgaard();
    std::vector<core::Cluster> WarmCover = WarmD.buildCover();
    core::BootstrapResult WarmR = WarmD.runAll(WarmCover);
    StoreWarmSeconds = WarmCascadeT.seconds();
    StoreStatsIdentical = replayableJson(WarmR) == ColdJson;
    support::CacheCounters C = WarmO.SummaryCache->counters();
    StoreHits = C.StoreHits;
    StoreHitRate = C.storeHitRate();

    // Verdict identity: serve the whole pair batch from the warm
    // cascade and compare against the storeless engine's answers.
    query::QueryEngine WarmEngine;
    WarmEngine.publish(query::QuerySnapshot::build(
        P, std::move(WarmCover), &WarmR.Clusters, QOpts, WarmO.SummaryCache));
    StoreVerdictsIdentical = WarmEngine.evalMayAlias(Batch, 0) == ColdAnswers;
  }

  // Cold-cluster tail-latency ablation (--cold-p99): eager vs demand
  // serving over genuinely cold entries (no summary cache to adopt
  // from), one first-touch query per cluster.
  size_t ColdQueries = 0;
  double EagerP50Ms = 0, EagerP99Ms = 0, DemandP50Ms = 0, DemandP99Ms = 0;
  double ColdImprovement = 0;
  unsigned long long ColdMismatches = 0, PostMismatches = 0;
  unsigned long long ColdPartialAnswers = 0, ColdPromotions = 0;
  if (ColdP99) {
    // First touch of every cluster: its first two pointer members at
    // their canonical location. Each query lands on a cluster nobody
    // has materialized yet -- the tail this ablation measures.
    struct ColdQuery {
      ir::VarId A, B;
      ir::LocId Loc;
    };
    std::vector<ColdQuery> ColdQs;
    for (const core::Cluster &C : ColdCover) {
      ir::VarId A = ir::InvalidVar, B = ir::InvalidVar;
      for (ir::VarId V : C.Members) {
        if (!P->var(V).isPointer())
          continue;
        if (A == ir::InvalidVar) {
          A = V;
        } else {
          B = V;
          break;
        }
      }
      if (B == ir::InvalidVar)
        continue;
      ir::LocId Loc = query::canonicalAliasLoc(*P, A, B);
      if (Loc == ir::InvalidLoc)
        continue;
      ColdQs.push_back({A, B, Loc});
    }
    ColdQueries = ColdQs.size();

    // Pool outlives both snapshots (declared first): a promotion worker
    // releasing the last snapshot reference must never destroy the pool
    // it is running on.
    auto PromoPool = std::make_shared<ThreadPool>(2);
    query::QueryOptions EagerOpts;
    EagerOpts.EngineOpts = BOpts.EngineOpts;
    query::QueryOptions DemandOpts = EagerOpts;
    DemandOpts.DemandMode = true;
    DemandOpts.PromotionPool = PromoPool;
    std::shared_ptr<const query::QuerySnapshot> EagerSnap =
        query::QuerySnapshot::build(P, ColdCover, &Result.Clusters,
                                    EagerOpts, nullptr);
    std::shared_ptr<const query::QuerySnapshot> DemandSnap =
        query::QuerySnapshot::build(P, std::move(ColdCover),
                                    &Result.Clusters, DemandOpts, nullptr);

    support::LatencyHistogram EagerH, DemandH;
    std::vector<uint8_t> EagerVerdicts;
    EagerVerdicts.reserve(ColdQs.size());
    for (const ColdQuery &Q : ColdQs) {
      Timer T;
      query::AliasAnswer A = EagerSnap->mayAliasAt(Q.A, Q.B, Q.Loc);
      EagerH.record(static_cast<uint64_t>(T.seconds() * 1e9));
      EagerVerdicts.push_back(A.MayAlias ? 1 : 0);
    }
    for (size_t I = 0; I < ColdQs.size(); ++I) {
      const ColdQuery &Q = ColdQs[I];
      Timer T;
      query::AliasAnswer A = DemandSnap->mayAliasAt(Q.A, Q.B, Q.Loc);
      DemandH.record(static_cast<uint64_t>(T.seconds() * 1e9));
      if ((A.MayAlias ? 1 : 0) != EagerVerdicts[I])
        ++ColdMismatches;
    }

    // Drain promotions, then every answer must be identical to the
    // never-partial snapshot's -- verdict and provenance both.
    DemandSnap->waitPromotionsIdle();
    for (size_t I = 0; I < ColdQs.size(); ++I) {
      const ColdQuery &Q = ColdQs[I];
      query::AliasAnswer E = EagerSnap->mayAliasAt(Q.A, Q.B, Q.Loc);
      query::AliasAnswer D = DemandSnap->mayAliasAt(Q.A, Q.B, Q.Loc);
      if (E.MayAlias != D.MayAlias || E.Source != D.Source)
        ++PostMismatches;
    }
    query::SnapshotStats DSt = DemandSnap->stats();
    ColdPartialAnswers = DSt.FscsPartialAnswers;
    ColdPromotions = DSt.PromotionsCompleted;

    support::LatencyHistogram::Snapshot ES = EagerH.snapshot();
    support::LatencyHistogram::Snapshot DS = DemandH.snapshot();
    EagerP50Ms = ES.quantileSecondsIfAny(0.50).value_or(0) * 1e3;
    EagerP99Ms = ES.quantileSecondsIfAny(0.99).value_or(0) * 1e3;
    DemandP50Ms = DS.quantileSecondsIfAny(0.50).value_or(0) * 1e3;
    DemandP99Ms = DS.quantileSecondsIfAny(0.99).value_or(0) * 1e3;
    ColdImprovement = DemandP99Ms > 0 ? EagerP99Ms / DemandP99Ms : 0.0;
  }

  std::printf("Query throughput on autofs (scale %.2f): %zu pointers, "
              "%zu pairs, %zu clusters (cascade %.3fs)\n",
              Scale, Ptrs.size(), NumPairs, Result.Clusters.size(),
              CascadeSeconds);
  std::printf("  %-26s %10s %14s\n", "configuration", "seconds",
              "queries/sec");
  std::printf("  %-26s %10.3f %14.0f\n", "naive whole-program loop",
              NaiveSeconds, Qps(NaiveSeconds));
  std::printf("  %-26s %10.3f %14.0f\n", "engine cold (1 thread)",
              ColdSeconds, Qps(ColdSeconds));
  std::printf("  %-26s %10.3f %14.0f\n", "engine warm (1 thread)",
              WarmSeconds, Qps(WarmSeconds));
  std::printf("  %-26s %10.3f %14.0f\n",
              ("engine warm (" + std::to_string(Threads) + " threads)")
                  .c_str(),
              MtSeconds, Qps(MtSeconds));
  std::printf("  speedup vs naive (cold): %.1fx; aliases found: naive "
              "%llu, engine %llu\n",
              Speedup, (unsigned long long)NaiveAliases,
              (unsigned long long)EngineAliases);
  std::printf("  answers: index %llu, fscs %llu, andersen %llu, "
              "steensgaard %llu; materialized %llu (%llu adopted, "
              "%llu evicted)\n",
              (unsigned long long)St.IndexAnswers,
              (unsigned long long)St.FscsAnswers,
              (unsigned long long)St.AndersenAnswers,
              (unsigned long long)St.SteensgaardAnswers,
              (unsigned long long)St.Materializations,
              (unsigned long long)St.CacheAdoptions,
              (unsigned long long)St.Evictions);
  if (StoreRun) {
    std::printf("  store restart ablation (%s):\n", StoreDir.c_str());
    std::printf("    cold cascade %.3fs (%llu records written), warm "
                "restart %.3fs (%llu revived, hit rate %.2f)\n",
                StoreColdSeconds, StorePuts, StoreWarmSeconds, StoreHits,
                StoreHitRate);
    std::printf("    warm stats %s, warm verdicts %s\n",
                StoreStatsIdentical ? "byte-identical" : "DIVERGED",
                StoreVerdictsIdentical ? "byte-identical" : "DIVERGED");
  }
  if (ColdP99) {
    std::printf("  cold-cluster tail latency (%zu first-touch queries):\n",
                ColdQueries);
    std::printf("    eager  p50 %9.3fms  p99 %9.3fms\n", EagerP50Ms,
                EagerP99Ms);
    std::printf("    demand p50 %9.3fms  p99 %9.3fms  (%.1fx p99, "
                "%llu partial answers, %llu promotions)\n",
                DemandP50Ms, DemandP99Ms, ColdImprovement,
                ColdPartialAnswers, ColdPromotions);
    std::printf("    verdicts: %s during partial phase, %s after "
                "promotion\n",
                ColdMismatches == 0 ? "identical" : "DIVERGED",
                PostMismatches == 0 ? "identical" : "DIVERGED");
  }

  if (StatsJson)
    std::printf(
        "{\"bench\": \"query_throughput\", \"scale\": %.3f, "
        "\"pointers\": %zu, \"pairs\": %zu, \"clusters\": %zu, "
        "\"cascade_seconds\": %.6f, \"naive_seconds\": %.6f, "
        "\"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
        "\"warm_mt_seconds\": %.6f, \"threads\": %u, "
        "\"speedup_vs_naive\": %.2f, \"qps_cold\": %.0f, "
        "\"qps_warm\": %.0f, \"qps_warm_mt\": %.0f, "
        "\"aliases_naive\": %llu, \"aliases_engine\": %llu, "
        "\"answers\": {\"index\": %llu, \"fscs\": %llu, "
        "\"andersen\": %llu, \"steensgaard\": %llu}, "
        "\"materializations\": %llu, \"cache_adoptions\": %llu, "
        "\"evictions\": %llu, "
        "\"store\": {\"enabled\": %s, \"cold_cascade_seconds\": %.6f, "
        "\"warm_cascade_seconds\": %.6f, \"store_puts\": %llu, "
        "\"store_hits\": %llu, \"warm_store_hit_rate\": %.4f, "
        "\"warm_stats_identical\": %s, \"warm_verdicts_identical\": %s}, "
        "\"cold_p99\": {\"enabled\": %s, \"queries\": %zu, "
        "\"eager_p50_ms\": %.4f, \"eager_p99_ms\": %.4f, "
        "\"demand_p50_ms\": %.4f, \"demand_p99_ms\": %.4f, "
        "\"p99_improvement\": %.2f, \"partial_answers\": %llu, "
        "\"promotions\": %llu, \"mismatches\": %llu, "
        "\"post_promotion_mismatches\": %llu}}\n",
        Scale, Ptrs.size(), NumPairs, Result.Clusters.size(),
        CascadeSeconds, NaiveSeconds, ColdSeconds, WarmSeconds, MtSeconds,
        Threads, Speedup, Qps(ColdSeconds), Qps(WarmSeconds),
        Qps(MtSeconds), (unsigned long long)NaiveAliases,
        (unsigned long long)EngineAliases,
        (unsigned long long)St.IndexAnswers,
        (unsigned long long)St.FscsAnswers,
        (unsigned long long)St.AndersenAnswers,
        (unsigned long long)St.SteensgaardAnswers,
        (unsigned long long)St.Materializations,
        (unsigned long long)St.CacheAdoptions,
        (unsigned long long)St.Evictions, StoreRun ? "true" : "false",
        StoreColdSeconds, StoreWarmSeconds, StorePuts, StoreHits,
        StoreHitRate, StoreStatsIdentical ? "true" : "false",
        StoreVerdictsIdentical ? "true" : "false",
        ColdP99 ? "true" : "false", ColdQueries, EagerP50Ms, EagerP99Ms,
        DemandP50Ms, DemandP99Ms, ColdImprovement, ColdPartialAnswers,
        ColdPromotions, ColdMismatches, PostMismatches);

  // Self-gating: a warm restart that changes any answer or any
  // replayable stat is a correctness failure, not a perf regression.
  if (StoreRun && (!StoreStatsIdentical || !StoreVerdictsIdentical))
    return 1;
  // Self-gating for --cold-p99: any verdict divergence is a soundness
  // failure; a p99 improvement under 2x means the demand path stopped
  // earning its keep.
  if (ColdP99 && (ColdMismatches || PostMismatches || ColdImprovement < 2.0))
    return 1;
  return 0;
}
