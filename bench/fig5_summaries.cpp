//===- bench/fig5_summaries.cpp - Figure 5 reproduction -------------------===//
//
// Regenerates the paper's Figure 5 narrative:
//  * foo's summary for x at its exit is (x, 3b, w, true);
//  * main's summary for z at its exit is (z, 6a, u, true), with bar
//    skipped entirely (it cannot modify P1 = {x,u,w,z} aliases);
//  * analyzing bar in isolation yields the two conditional tuples
//    t1 = (a, 2c, d, 1c: x -> b) and t2 = (a, 2c, b, 1c: x -/> b).
//
//===----------------------------------------------------------------------===//

#include "analysis/Steensgaard.h"
#include "core/AliasCover.h"
#include "frontend/Diagnostics.h"
#include "frontend/Lower.h"
#include "fscs/SummaryEngine.h"
#include "ir/CallGraph.h"

#include <cstdio>

using namespace bsaa;

int main() {
  const char *Src = R"(
    int *a; int *b; int *c; int *d;
    int **x; int **u; int **w; int **z;
    void foo(void) {
      1b: *x = d;
      2b: a = b;
      3b: x = w;
    }
    void bar(void) {
      1c: *x = d;
      2c: a = b;
    }
    void main(void) {
      1a: x = &c;
      2a: w = u;
      3a: foo();
      4a: z = x;
      5a: *z = b;
      6a: bar();
    }
  )";
  frontend::Diagnostics Diags;
  auto P = frontend::compileString(Src, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.toString().c_str());
    return 1;
  }

  std::printf("Figure 5: summary tuples\n");
  std::printf("program:\n%s\n", Src);

  ir::CallGraph CG(*P);
  analysis::SteensgaardAnalysis S(*P);
  S.run();

  std::printf("Steensgaard partitions: P1 = {x,u,w,z} same partition: "
              "%s; P2 = {a,b,c,d} same partition: %s\n\n",
              S.samePartition(P->findVariable("x"), P->findVariable("z"))
                  ? "yes"
                  : "NO",
              S.samePartition(P->findVariable("a"), P->findVariable("d"))
                  ? "yes"
                  : "NO");

  core::Cluster Whole = core::wholeProgramCluster(*P);
  fscs::SummaryEngine Engine(*P, CG, S, Whole);

  auto Dump = [&](const char *What, ir::LocId At, const char *Var) {
    std::printf("%s:\n", What);
    for (const fscs::SummaryTuple &T : Engine.summaryAt(
             At, ir::Ref::direct(P->findVariable(Var))))
      std::printf("  (%s, L%u, %s, %s)\n", Var, At,
                  ir::refToString(*P, T.Origin).c_str(),
                  T.Cond.toString(*P).c_str());
  };

  Dump("summary of foo for x at its exit (paper: (x, 3b, w, true))",
       P->func(P->findFunction("foo")).Exit, "x");
  Dump("summary of main for z at its exit (paper: (z, 6a, u, true))",
       P->func(P->findFunction("main")).Exit, "z");
  Dump("summary of bar for a at 2c (paper: the two conditional tuples)",
       P->findLabel("2c"), "a");
  return 0;
}
