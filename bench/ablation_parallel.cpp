//===- bench/ablation_parallel.cpp - Parallelism sweep --------------------===//
//
// Ablation for the paper's parallelization claim: clusters are analyzed
// independently, so packing them into k parts divides the wall-clock
// time by (up to) k. Reports the paper's greedy simulated packing for
// k = 1..8 and a real thread-pool run (LPT-dispatched) for comparison.
//
// Usage: ablation_parallel [scale] [--stats-json]
//
// --stats-json dumps the full BootstrapResult of the threaded run --
// per-cluster pointer counts, slice sizes, LPT cost keys, wall-clock,
// steps, summary tuples/keys, dovetail accounting, and the merged
// global Statistics registry -- as a JSON document on stdout.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/BootstrapDriver.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <thread>

using namespace bsaa;
using namespace bsaa::bench;

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      // Hide the flag from the positional scale parser.
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
      break;
    }
  }

  double Scale = scaleFromArgs(Argc, Argv, 0.25);
  workload::SuiteEntry Entry = workload::suiteEntry("autofs", Scale);
  std::unique_ptr<ir::Program> P = compileEntry(Entry);

  core::BootstrapOptions Opts;
  Opts.EngineOpts.StepBudget = 50000;
  core::BootstrapDriver Driver(*P, Opts);
  core::BootstrapResult R = Driver.runAll();

  std::printf("Parallel-packing ablation on autofs (scale %.2f): "
              "%u clusters, serial FSCS %.3fs\n",
              Scale, R.NumClusters, R.TotalFscsSeconds);
  std::printf("  %6s %16s %9s\n", "parts", "simulated-max(s)", "speedup");
  for (uint32_t Parts = 1; Parts <= 8; ++Parts) {
    double T = core::BootstrapDriver::simulateParallel(R.Clusters, Parts);
    std::printf("  %6u %16.3f %8.2fx\n", Parts, T,
                T > 0 ? R.TotalFscsSeconds / T : 0.0);
  }

  // Real threads (on a single-core host this mostly demonstrates that
  // the per-cluster analyses are safely concurrent). Big clusters are
  // dispatched first (LPT) so the tail is short.
  unsigned HW = std::thread::hardware_concurrency();
  core::BootstrapOptions ThreadedOpts = Opts;
  ThreadedOpts.Threads = HW > 1 ? HW : 2;
  core::BootstrapDriver Threaded(*P, ThreadedOpts);
  Timer T;
  core::BootstrapResult R2 = Threaded.runAll();
  std::printf("\nreal thread pool (%u threads, %u hardware): wall %.3fs "
              "for %u clusters\n",
              ThreadedOpts.Threads, HW, T.seconds(), R2.NumClusters);

  if (StatsJson)
    std::fputs(core::toStatsJson(R2).c_str(), stdout);
  return 0;
}
