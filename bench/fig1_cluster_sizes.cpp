//===- bench/fig1_cluster_sizes.cpp - Figure 1 reproduction ---------------===//
//
// Regenerates the paper's Figure 1: the frequency of each cluster size
// for the autofs workload, Steensgaard partitions vs. Andersen
// clusters. The shape to check: a dense mass of small clusters for
// both, with the maximum Steensgaard partition far to the right of the
// maximum Andersen cluster.
//
// Usage: fig1_cluster_sizes [scale] (default 1.0)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/BootstrapDriver.h"

#include <cstdio>
#include <map>

using namespace bsaa;
using namespace bsaa::bench;

namespace {

std::map<uint32_t, uint32_t>
sizeHistogram(const ir::Program &P, const std::vector<core::Cluster> &Cs) {
  std::map<uint32_t, uint32_t> Hist;
  for (const core::Cluster &C : Cs) {
    uint32_t N = C.pointerCount(P);
    if (N > 0)
      ++Hist[N];
  }
  return Hist;
}

void printSeries(const char *Name,
                 const std::map<uint32_t, uint32_t> &Hist) {
  std::printf("\n%s (cluster size -> frequency):\n", Name);
  uint32_t Max = 0;
  for (auto [Size, Freq] : Hist) {
    std::printf("  %5u %6u\n", Size, Freq);
    Max = Size;
  }
  std::printf("  max cluster size: %u\n", Max);
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv, 0.5);
  workload::SuiteEntry Entry = workload::suiteEntry("autofs", Scale);
  std::unique_ptr<ir::Program> P = compileEntry(Entry);

  std::printf("Figure 1: cluster size frequencies for autofs, "
              "Steensgaard vs. Andersen (scale %.2f, %u pointers)\n",
              Scale, P->numPointers());

  // Steensgaard partitions.
  core::BootstrapOptions SteensOpts;
  SteensOpts.AndersenThreshold = UINT32_MAX;
  core::BootstrapDriver SteensDriver(*P, SteensOpts);
  std::vector<core::Cluster> Partitions = SteensDriver.buildCover();
  printSeries("Steensgaard partitions", sizeHistogram(*P, Partitions));

  // Andersen clusters (threshold 0: split every partition, which is
  // what the figure plots).
  core::BootstrapOptions AndOpts;
  AndOpts.AndersenThreshold = 0;
  core::BootstrapDriver AndDriver(*P, AndOpts);
  std::vector<core::Cluster> Clusters = AndDriver.buildCover();
  printSeries("Andersen clusters", sizeHistogram(*P, Clusters));
  return 0;
}
