//===- bench/ablation_pathsens.cpp - Section 3 extension demo -------------===//
//
// Demonstrates the paper's path-sensitivity extension: tracking branch
// predicates as BDDs "weeds out infeasible paths and hence bogus
// summary tuples". Runs the path-insensitive engine and the
// path-sensitive walker on programs with increasing numbers of
// correlated branch pairs and reports how many spurious origins the
// extension removes.
//
//===----------------------------------------------------------------------===//

#include "frontend/Diagnostics.h"
#include "frontend/Lower.h"
#include "analysis/Steensgaard.h"
#include "core/AliasCover.h"
#include "fscs/ClusterAliasAnalysis.h"
#include "fscs/PathSensitivity.h"
#include "ir/CallGraph.h"

#include <cstdio>
#include <sstream>
#include <string>

using namespace bsaa;

namespace {

/// Builds a chain of N correlated branch pairs: each pair tests the
/// same predicate twice, so half of the flow-sensitive origins are
/// infeasible.
std::string correlatedProgram(int Pairs) {
  std::ostringstream OS;
  OS << "void main(void) {\n";
  OS << "  int c; int d;\n";
  for (int I = 0; I < Pairs; ++I)
    OS << "  int a" << I << "; int b" << I << "; int o" << I
       << "; int *x" << I << "; int *y" << I << ";\n";
  for (int I = 0; I < Pairs; ++I) {
    OS << "  if (c == d) { x" << I << " = &a" << I << "; } else { x" << I
       << " = &b" << I << "; }\n";
    OS << "  if (c == d) { y" << I << " = x" << I << "; } else { y" << I
       << " = &o" << I << "; }\n";
  }
  OS << "  here: c = c;\n";
  OS << "}\n";
  return OS.str();
}

} // namespace

int main() {
  std::printf("Path-sensitivity extension: origins of each y_i at the "
              "end, path-insensitive vs. BDD-pruned\n");
  std::printf("  %6s %18s %16s %14s\n", "pairs", "insensitive-origins",
              "pruned-origins", "paths-pruned");

  for (int Pairs : {1, 2, 4, 8}) {
    frontend::Diagnostics Diags;
    auto P = frontend::compileString(correlatedProgram(Pairs), Diags);
    if (!P) {
      std::fprintf(stderr, "%s", Diags.toString().c_str());
      return 1;
    }
    ir::CallGraph CG(*P);
    analysis::SteensgaardAnalysis S(*P);
    S.run();
    core::Cluster Whole = core::wholeProgramCluster(*P);
    fscs::ClusterAliasAnalysis Insensitive(*P, CG, S, Whole);
    fscs::PathSensitiveOrigins Sensitive(*P);

    ir::LocId Here = P->findLabel("here");
    uint64_t InsensitiveOrigins = 0, PrunedOrigins = 0, PrunedPaths = 0;
    for (int I = 0; I < Pairs; ++I) {
      ir::VarId Y =
          P->findVariable("main::y" + std::to_string(I));
      InsensitiveOrigins +=
          Insensitive.pointsTo(Y, Here).Objects.size() +
          0; // objects only; unresolved (&o) origins resolve too
      auto R = Sensitive.originsBefore(Here, ir::Ref::direct(Y));
      PrunedOrigins += R.Origins.size();
      PrunedPaths += R.PrunedPaths;
    }
    std::printf("  %6d %18lu %16lu %14lu\n", Pairs,
                (unsigned long)InsensitiveOrigins,
                (unsigned long)PrunedOrigins,
                (unsigned long)PrunedPaths);
  }
  std::printf("\nexpected: the path-insensitive engine reports 3 origins "
              "per pair (a_i, b_i, o_i); the extension prunes the "
              "infeasible b_i, leaving 2.\n");
  return 0;
}
