//===- bench/fig4_update_sequences.cpp - Figure 4 reproduction ------------===//
//
// Regenerates the paper's Figure 4 narrative: the sequence "4a" is a
// complete update sequence from b to a, but its maximal completion is
// "1a, 4a" -- the value of a at the end originates from c, not b.
//
//===----------------------------------------------------------------------===//

#include "analysis/Steensgaard.h"
#include "core/AliasCover.h"
#include "frontend/Diagnostics.h"
#include "frontend/Lower.h"
#include "fscs/SummaryEngine.h"
#include "ir/CallGraph.h"

#include <cstdio>

using namespace bsaa;

int main() {
  const char *Src = R"(
    void main(void) {
      int *a; int *b; int *c;
      int **x; int **y;
      1a: b = c;
      2a: x = &a;
      3a: y = &b;
      4a: *x = b;
    }
  )";
  frontend::Diagnostics Diags;
  auto P = frontend::compileString(Src, Diags);
  if (!P) {
    std::fprintf(stderr, "%s", Diags.toString().c_str());
    return 1;
  }

  std::printf(
      "Figure 4: complete vs. maximally complete update sequences\n");
  std::printf("program:\n%s\n", Src);

  ir::CallGraph CG(*P);
  analysis::SteensgaardAnalysis S(*P);
  S.run();
  core::Cluster Whole = core::wholeProgramCluster(*P);
  fscs::SummaryEngine Engine(*P, CG, S, Whole);

  ir::VarId A = P->findVariable("main::a");
  ir::LocId Exit = P->func(P->findFunction("main")).Exit;
  std::printf("summary tuples for a at main's exit:\n");
  bool SawC = false, SawB = false;
  for (const fscs::SummaryTuple &T :
       Engine.summaryAt(Exit, ir::Ref::direct(A))) {
    std::printf("  (a, exit, %s, %s)\n",
                ir::refToString(*P, T.Origin).c_str(),
                T.Cond.toString(*P).c_str());
    if (T.Origin == ir::Ref::direct(P->findVariable("main::c")))
      SawC = true;
    if (T.Origin == ir::Ref::direct(P->findVariable("main::b")))
      SawB = true;
  }
  std::printf("\norigin c found (maximal completion through 1a): %s\n",
              SawC ? "yes" : "NO (BUG)");
  std::printf("origin b found (would mean the sequence was not "
              "maximally completed): %s\n",
              SawB ? "YES (BUG)" : "no");
  return (SawC && !SawB) ? 0 : 1;
}
