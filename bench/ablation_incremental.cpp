//===- bench/ablation_incremental.cpp - Incremental re-analysis -----------===//
//
// Ablation for the incremental re-analysis subsystem: drive one
// synthetic program through a deterministic edit stream
// (workload::generateEditStream) and, after every edit, analyze the new
// version twice --
//
//   full         a cold BootstrapDriver with fresh caches, and
//   incremental  core::IncrementalDriver, which adopts the previous
//                Steensgaard solution when the partition-relevant
//                fingerprint is unchanged and replays untouched
//                clusters from the scoped summary cache
//                (core/ClusterDependencies.h).
//
// Both runs are cross-checked per edit: their timing- and
// cache-counter-stripped stats JSON must be byte-identical (the same
// oracle tests/test_incremental.cpp enforces), so the speedup column is
// never bought with a wrong answer.
//
// Usage: ablation_incremental [scale] [--edits N] [--stats-json]
//
// --stats-json dumps the final incremental BootstrapResult (including
// cumulative cache counters) as a JSON document on stdout.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/IncrementalDriver.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace bsaa;
using namespace bsaa::bench;

namespace {

/// Edit-friendly workload: no recursion and no cross-community copies
/// keep dependency cones small, so a single-function edit invalidates
/// few clusters; a healthy share of non-pointer functions makes many
/// mutate edits partition-neutral (Steensgaard adoption fires).
workload::GeneratorConfig editableConfig(double Scale) {
  workload::GeneratorConfig Cfg;
  Cfg.Seed = 42;
  Cfg.NumFunctions = static_cast<uint32_t>(120 * Scale);
  if (Cfg.NumFunctions < 8)
    Cfg.NumFunctions = 8;
  Cfg.StmtsPerFunction = 18;
  Cfg.Communities = static_cast<uint32_t>(24 * Scale);
  if (Cfg.Communities < 4)
    Cfg.Communities = 4;
  Cfg.PointerFunctionPercent = 60;
  Cfg.WeightNoise = 20;
  Cfg.WeightCall = 4;
  Cfg.RecursionPercent = 0;
  Cfg.CrossCommunityBasisPoints = 0;
  return Cfg;
}

std::unique_ptr<ir::Program> compileVersion(const workload::GeneratorConfig &Cfg,
                                            const workload::EditState &St) {
  std::string Src = workload::generateProgram(Cfg, St);
  frontend::Diagnostics Diags;
  std::unique_ptr<ir::Program> P = frontend::compileString(Src, Diags);
  if (!P) {
    std::fprintf(stderr, "error: edited program failed to compile:\n%s\n",
                 Diags.toString().c_str());
    std::abort();
  }
  return P;
}

const char *kindName(workload::EditKind K) {
  switch (K) {
  case workload::EditKind::Mutate:
    return "mutate";
  case workload::EditKind::Stub:
    return "stub";
  case workload::EditKind::Append:
    return "append";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  uint32_t NumEdits = 20;
  for (int I = 1; I < Argc;) {
    int Strip = 0;
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      Strip = 1;
    } else if (std::strcmp(Argv[I], "--edits") == 0 && I + 1 < Argc) {
      NumEdits = static_cast<uint32_t>(std::atoi(Argv[I + 1]));
      Strip = 2;
    }
    if (Strip) {
      for (int J = I; J + Strip < Argc; ++J)
        Argv[J] = Argv[J + Strip];
      Argc -= Strip;
    } else {
      ++I;
    }
  }
  double Scale = scaleFromArgs(Argc, Argv, 0.2);

  workload::GeneratorConfig Cfg = editableConfig(Scale);
  std::vector<workload::ProgramEdit> Edits =
      workload::generateEditStream(Cfg, NumEdits, /*StreamSeed=*/7);
  workload::EditState St = workload::initialEditState(Cfg);

  core::BootstrapOptions Base;
  Base.AndersenThreshold = 60;
  Base.EngineOpts.StepBudget = 50000;
  core::IncrementalDriver Incr(Base);

  std::printf("incremental re-analysis (scale %.2f, %u functions, %u edits)\n",
              Scale, Cfg.NumFunctions, NumEdits);
  std::printf("  %-4s %-7s %5s  %9s %9s %8s  %9s %7s %6s %6s %5s\n", "edit",
              "kind", "func", "full(s)", "incr(s)", "speedup", "#clusters",
              "re-ran", "cached", "pred", "match");

  const core::StatsJsonOptions Strip{/*IncludeTimings=*/false,
                                     /*IncludeCacheStats=*/false};
  double FullTotal = 0, IncrTotal = 0;
  uint32_t Mismatches = 0, Adoptions = 0;
  core::BootstrapResult LastIncr;

  // Step 0 is the initial (cold) version; step 1 is a "touch" -- the
  // identical program resubmitted, the no-op-edit fast path where
  // Steensgaard must be adopted and every cluster must replay; steps
  // 2.. are the real edits.
  for (uint32_t I = 0; I <= NumEdits + 1; ++I) {
    const char *Kind = I == 0 ? "init" : "touch";
    uint32_t Func = 0;
    if (I > 1) {
      const workload::ProgramEdit &E = Edits[I - 2];
      workload::applyEdit(St, E);
      Kind = kindName(E.Kind);
      Func = E.Function;
    }

    // Incremental run (update() clears the Statistics registry itself).
    core::UpdateReport Rep;
    const core::BootstrapResult &IR = Incr.update(compileVersion(Cfg, St), &Rep);
    std::string IncrJson = core::toStatsJson(IR, Strip);
    LastIncr = IR;
    if (Rep.SteensgaardAdopted)
      ++Adoptions;

    // Cold full run over the same version, fresh caches.
    Statistics::global().clear();
    std::unique_ptr<ir::Program> P = compileVersion(Cfg, St);
    core::BootstrapDriver Full(*P, Base);
    Timer FT;
    core::BootstrapResult FR = Full.runAll();
    double FullSecs = FT.seconds();
    bool Match = core::toStatsJson(FR, Strip) == IncrJson;
    if (!Match)
      ++Mismatches;

    FullTotal += FullSecs;
    IncrTotal += Rep.Seconds;
    char FuncCol[16];
    if (I <= 1)
      std::snprintf(FuncCol, sizeof(FuncCol), "-");
    else
      std::snprintf(FuncCol, sizeof(FuncCol), "%u", Func);
    std::printf("  %-4u %-7s %5s  %9.3f %9.3f %7.1fx  %9u %7u %6u %6u %5s%s\n",
                I, Kind, FuncCol, FullSecs, Rep.Seconds,
                Rep.Seconds > 0 ? FullSecs / Rep.Seconds : 0.0,
                Rep.NumClusters, Rep.ClustersReanalyzed, Rep.ClustersFromCache,
                Rep.PredictedInvalidated, Match ? "ok" : "FAIL",
                Rep.SteensgaardAdopted ? " (steens adopted)" : "");
    std::fflush(stdout);
  }

  std::printf("\n  total full %.3fs, total incremental %.3fs (%.1fx), "
              "steensgaard adopted %u/%u, mismatches %u\n",
              FullTotal, IncrTotal,
              IncrTotal > 0 ? FullTotal / IncrTotal : 0.0, Adoptions,
              NumEdits + 2, Mismatches);

  if (StatsJson)
    std::fputs(core::toStatsJson(LastIncr).c_str(), stdout);
  return Mismatches ? 1 : 0;
}
