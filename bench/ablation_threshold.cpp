//===- bench/ablation_threshold.cpp - Andersen threshold sweep ------------===//
//
// Ablation for the paper's empirically chosen Andersen threshold of 60
// (Section 2.1: "This threshold can be determined empirically. For our
// benchmark suite it turned out to be 60."). Sweeps the threshold over
// two contrasting workloads:
//  * sendmail-like (little cluster overlap): low thresholds pay off;
//  * mt-daapd-like (heavy overlap): Andersen clustering buys little and
//    its own cost plus extra clusters can make things worse -- the
//    paper's threefold-slowdown anecdote.
//
// Usage: ablation_threshold [scale] (default 0.25)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/BootstrapDriver.h"

#include <cstdio>

using namespace bsaa;
using namespace bsaa::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv, 0.2);
  const uint32_t Thresholds[] = {0, 15, 30, 60, 120, UINT32_MAX};

  for (const char *Name : {"sendmail", "mt-daapd"}) {
    workload::SuiteEntry Entry = workload::suiteEntry(Name, Scale);
    std::unique_ptr<ir::Program> P = compileEntry(Entry);
    std::printf("\n%s (scale %.2f, %u pointers)\n", Name, Scale,
                P->numPointers());
    std::printf("  %10s %9s %6s %12s %12s %10s\n", "threshold", "#clusters",
                "max", "cluster-time", "total-fscs", "sim-par-5");

    for (uint32_t T : Thresholds) {
      core::BootstrapOptions Opts;
      Opts.AndersenThreshold = T;
      Opts.EngineOpts.StepBudget = 50000;
      core::BootstrapDriver Driver(*P, Opts);
      core::BootstrapResult R = Driver.runAll();
      char TBuf[16];
      if (T == UINT32_MAX)
        std::snprintf(TBuf, sizeof(TBuf), "off");
      else
        std::snprintf(TBuf, sizeof(TBuf), "%u", T);
      std::printf("  %10s %9u %6u %12.3f %12s %10s\n", TBuf, R.NumClusters,
                  R.MaxClusterSize, R.AndersenClusteringSeconds,
                  formatSeconds(R.TotalFscsSeconds, R.AnyBudgetHit).c_str(),
                  formatSeconds(R.SimulatedParallelSeconds, R.AnyBudgetHit)
                      .c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
