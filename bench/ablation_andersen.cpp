//===- bench/ablation_andersen.cpp - Andersen solver ablation -------------===//
//
// Ablation for the Andersen rung of the cascade: whole-program solves
// of every Table-1 suite entry under
//   (a) the naive solver (full-set rescans, no offline collapsing) and
//   (b) the optimized solver (offline HVN pointer-equivalence
//       collapsing + difference propagation),
// both with periodic online cycle elimination. The two must produce
// byte-identical points-to sets for every variable -- the optimized
// pipeline is an exact accelerator, not an approximation -- and the
// optimized solver must win wall-clock on the big entries.
//
// Usage: ablation_andersen [scale] [--stats-json]
//
// --stats-json dumps per-entry stats (offline collapses, HVN labels,
// walked set bytes, solve seconds, speedup) plus the gate fields the
// CI smoke asserts: "all_identical" and "largest_speedup" (speedup on
// the entry with the most pointers, where work dwarfs timer noise).
//
//===----------------------------------------------------------------------===//

#include "analysis/Andersen.h"
#include "bench/BenchUtil.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace bsaa;
using namespace bsaa::bench;

namespace {

struct EntryStats {
  std::string Name;
  uint32_t Vars = 0;
  uint32_t Pointers = 0;
  bool Identical = false;
  double NaiveSeconds = 0;
  double OptSeconds = 0;
  uint64_t NaiveBytes = 0;
  uint64_t OptBytes = 0;
  uint64_t NaiveIterations = 0;
  uint64_t OptIterations = 0;
  uint32_t OfflineCollapsed = 0;
  uint32_t CopySccVars = 0;
  uint32_t LabelMergedVars = 0;
  uint32_t HvnLabels = 0;
  double speedup() const {
    return OptSeconds > 0 ? NaiveSeconds / OptSeconds : 0;
  }
};

/// Solves whole-program under \p Opts, repeating \p Repeats times and
/// keeping the fastest wall-clock (the analysis is deterministic, so
/// only timing varies between repeats).
double timedRun(analysis::AndersenAnalysis &A, unsigned Repeats) {
  double Best = 0;
  for (unsigned I = 0; I < Repeats; ++I) {
    A.run();
    if (I == 0 || A.solveSeconds() < Best)
      Best = A.solveSeconds();
  }
  return Best;
}

bool identicalPointsTo(const ir::Program &P,
                       const analysis::AndersenAnalysis &A,
                       const analysis::AndersenAnalysis &B) {
  for (ir::VarId V = 0; V < P.numVars(); ++V)
    if (A.pointsTo(V) != B.pointsTo(V))
      return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  for (int I = 1; I < Argc;) {
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      // Hide the flag from the positional scale parser.
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
    } else {
      ++I;
    }
  }

  double Scale = scaleFromArgs(Argc, Argv, 0.25);
  const unsigned Repeats = 3;

  analysis::AndersenAnalysis::Options Naive;
  Naive.EnableHVN = false;
  Naive.EnableDiffProp = false;
  analysis::AndersenAnalysis::Options Optimized;
  Optimized.EnableHVN = true;
  Optimized.EnableDiffProp = true;

  std::vector<EntryStats> All;
  std::printf("Andersen solver ablation (scale %.2f, best of %u runs)\n",
              Scale, Repeats);
  std::printf("  %-12s %8s %8s %10s %10s %8s %9s %11s\n", "entry", "vars",
              "ptrs", "naive-s", "opt-s", "speedup", "collapsed", "bytes-walk");

  for (const workload::SuiteEntry &Entry : workload::table1Suite(Scale)) {
    std::unique_ptr<ir::Program> P = compileEntry(Entry);
    EntryStats S;
    S.Name = Entry.Name;
    S.Vars = P->numVars();
    S.Pointers = P->numPointers();

    analysis::AndersenAnalysis NaiveRun(*P, Naive);
    S.NaiveSeconds = timedRun(NaiveRun, Repeats);
    S.NaiveBytes = NaiveRun.propagatedBytes();
    S.NaiveIterations = NaiveRun.iterations();

    analysis::AndersenAnalysis OptRun(*P, Optimized);
    S.OptSeconds = timedRun(OptRun, Repeats);
    S.OptBytes = OptRun.propagatedBytes();
    S.OptIterations = OptRun.iterations();
    S.OfflineCollapsed = OptRun.prepareStats().Collapsed;
    S.CopySccVars = OptRun.prepareStats().CopySccVars;
    S.LabelMergedVars = OptRun.prepareStats().LabelMergedVars;
    S.HvnLabels = OptRun.prepareStats().Labels;

    S.Identical = identicalPointsTo(*P, NaiveRun, OptRun);

    std::printf("  %-12s %8u %8u %10.3f %10.3f %7.2fx %9u %5" PRIu64
                "/%-5" PRIu64 "%s\n",
                S.Name.c_str(), S.Vars, S.Pointers, S.NaiveSeconds,
                S.OptSeconds, S.speedup(), S.OfflineCollapsed,
                S.OptBytes >> 10, S.NaiveBytes >> 10,
                S.Identical ? "" : "  RESULTS DIFFER");
    std::fflush(stdout);
    All.push_back(std::move(S));
  }

  bool AllIdentical = true;
  const EntryStats *Largest = nullptr;
  for (const EntryStats &S : All) {
    AllIdentical = AllIdentical && S.Identical;
    if (!Largest || S.Pointers > Largest->Pointers)
      Largest = &S;
  }
  std::printf("\nlargest entry: %s, speedup %.2fx, identical: %s\n",
              Largest ? Largest->Name.c_str() : "-",
              Largest ? Largest->speedup() : 0, AllIdentical ? "yes" : "NO");

  if (StatsJson) {
    std::string J = "{\n  \"entries\": [\n";
    char Buf[512];
    for (size_t I = 0; I < All.size(); ++I) {
      const EntryStats &S = All[I];
      std::snprintf(
          Buf, sizeof(Buf),
          "    {\"name\": \"%s\", \"vars\": %u, \"pointers\": %u, "
          "\"identical\": %s, \"naive_seconds\": %.6f, \"opt_seconds\": %.6f, "
          "\"speedup\": %.3f, \"naive_bytes_walked\": %" PRIu64
          ", \"opt_bytes_walked\": %" PRIu64 ", \"naive_iterations\": %" PRIu64
          ", \"opt_iterations\": %" PRIu64 ", \"offline_collapsed\": %u, "
          "\"copy_scc_vars\": %u, \"label_merged_vars\": %u, "
          "\"hvn_labels\": %u}%s\n",
          S.Name.c_str(), S.Vars, S.Pointers, S.Identical ? "true" : "false",
          S.NaiveSeconds, S.OptSeconds, S.speedup(), S.NaiveBytes, S.OptBytes,
          S.NaiveIterations, S.OptIterations, S.OfflineCollapsed, S.CopySccVars,
          S.LabelMergedVars, S.HvnLabels, I + 1 < All.size() ? "," : "");
      J += Buf;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "  ],\n  \"all_identical\": %s,\n  \"largest_entry\": "
                  "\"%s\",\n  \"largest_speedup\": %.3f\n}\n",
                  AllIdentical ? "true" : "false",
                  Largest ? Largest->Name.c_str() : "-",
                  Largest ? Largest->speedup() : 0);
    J += Buf;
    std::fputs(J.c_str(), stdout);
  }
  return AllIdentical ? 0 : 1;
}
