//===- bench/racecheck_bench.cpp - Incremental race-check ablation --------===//
//
// Ablation for the incremental race checker: drive one lock-heavy
// synthetic program through a deterministic edit stream and, after
// every edit, produce the race verdicts twice --
//
//   cold         a fresh racecheck::RaceCheckService (full cascade,
//                full lockset re-derivation, empty facts cache), and
//   incremental  one long-lived RaceCheckService that adopts, replays
//                and re-checks only what the edit invalidated.
//
// Both sides are cross-checked per edit: toReportJson() -- which
// contains no timings or cache counters -- must be byte-identical, so
// the speedup column is never bought with a wrong verdict.
//
// Usage: racecheck_bench [scale] [--edits N] [--stats-json]
//
// --stats-json appends one machine-readable JSON line (the CI smoke
// gate parses the last stdout line): verdicts_identical, the touch-edit
// speedup (step 1: identical program resubmitted), the aggregate
// speedup over the whole stream, and the final warning count.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "racecheck/RaceCheckEngine.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

using namespace bsaa;
using namespace bsaa::bench;

namespace {

/// The ablation_incremental editable workload plus enough locking to
/// carry real races: every non-stubbed function gets 1..2 critical
/// sections over 8 shared variables guarded by 6 lock pointers.
workload::GeneratorConfig raceConfig(double Scale) {
  workload::GeneratorConfig Cfg;
  Cfg.Seed = 42;
  Cfg.NumFunctions = static_cast<uint32_t>(120 * Scale);
  if (Cfg.NumFunctions < 8)
    Cfg.NumFunctions = 8;
  Cfg.StmtsPerFunction = 14;
  Cfg.Communities = static_cast<uint32_t>(24 * Scale);
  if (Cfg.Communities < 4)
    Cfg.Communities = 4;
  Cfg.PointerFunctionPercent = 60;
  Cfg.WeightNoise = 20;
  Cfg.WeightCall = 4;
  Cfg.RecursionPercent = 0;
  Cfg.CrossCommunityBasisPoints = 0;
  Cfg.LockPointers = 6;
  Cfg.SharedVariables = 8;
  Cfg.LockDensity = 2;
  return Cfg;
}

std::unique_ptr<ir::Program>
compileVersion(const workload::GeneratorConfig &Cfg,
               const workload::EditState &St) {
  std::string Src = workload::generateProgram(Cfg, St);
  frontend::Diagnostics Diags;
  std::unique_ptr<ir::Program> P = frontend::compileString(Src, Diags);
  if (!P) {
    std::fprintf(stderr, "error: edited program failed to compile:\n%s\n",
                 Diags.toString().c_str());
    std::abort();
  }
  return P;
}

const char *kindName(workload::EditKind K) {
  switch (K) {
  case workload::EditKind::Mutate:
    return "mutate";
  case workload::EditKind::Stub:
    return "stub";
  case workload::EditKind::Append:
    return "append";
  }
  return "?";
}

core::BootstrapOptions baseOptions() {
  core::BootstrapOptions Opts;
  Opts.AndersenThreshold = 60;
  Opts.EngineOpts.StepBudget = 50000;
  return Opts;
}

} // namespace

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  uint32_t NumEdits = 20;
  for (int I = 1; I < Argc;) {
    int Strip = 0;
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      Strip = 1;
    } else if (std::strcmp(Argv[I], "--edits") == 0 && I + 1 < Argc) {
      NumEdits = static_cast<uint32_t>(std::atoi(Argv[I + 1]));
      Strip = 2;
    }
    if (Strip) {
      for (int J = I; J + Strip < Argc; ++J)
        Argv[J] = Argv[J + Strip];
      Argc -= Strip;
    } else {
      ++I;
    }
  }
  double Scale = scaleFromArgs(Argc, Argv, 0.15);

  workload::GeneratorConfig Cfg = raceConfig(Scale);
  std::vector<workload::ProgramEdit> Edits =
      workload::generateEditStream(Cfg, NumEdits, /*StreamSeed=*/7);
  workload::EditState St = workload::initialEditState(Cfg);

  racecheck::RaceCheckService Incr(baseOptions());

  std::printf("incremental race checking (scale %.2f, %u functions, %u "
              "edits)\n",
              Scale, Cfg.NumFunctions, NumEdits);
  std::printf("  %-4s %-7s %5s  %9s %9s %8s  %5s %6s %6s  %5s %5s\n", "edit",
              "kind", "func", "cold(s)", "incr(s)", "speedup", "fns",
              "re-chk", "cached", "warns", "match");

  double ColdTotal = 0, IncrTotal = 0, TouchSpeedup = 0;
  uint32_t Mismatches = 0, FinalWarnings = 0;

  // Step 0 is the initial (cold) version; step 1 is a "touch" -- the
  // identical program resubmitted, where every cluster and every
  // function's lockset facts must replay; steps 2.. are the real edits.
  for (uint32_t I = 0; I <= NumEdits + 1; ++I) {
    const char *Kind = I == 0 ? "init" : "touch";
    uint32_t Func = 0;
    if (I > 1) {
      const workload::ProgramEdit &E = Edits[I - 2];
      workload::applyEdit(St, E);
      Kind = kindName(E.Kind);
      Func = E.Function;
    }

    // The touch step is the headline ratio CI gates on, and both sides
    // run in tens of milliseconds at small scales -- best-of-3 keeps
    // scheduler noise out of the gate. Re-submitting the identical
    // program is a touch every time, so repetition is free.
    uint32_t Reps = I == 1 ? 3 : 1;

    double IncrSecs = 0;
    racecheck::CheckReport Rep;
    for (uint32_t R = 0; R < Reps; ++R) {
      Timer IT;
      Rep = Incr.update(compileVersion(Cfg, St));
      double S = IT.seconds();
      if (R == 0 || S < IncrSecs)
        IncrSecs = S;
    }
    std::string IncrJson = racecheck::toReportJson(*Incr.report());

    // Cold reference: fresh service, fresh caches, same version.
    double ColdSecs = 0;
    bool Match = true;
    for (uint32_t R = 0; R < Reps; ++R) {
      Statistics::global().clear();
      std::unique_ptr<ir::Program> P = compileVersion(Cfg, St);
      Timer CT;
      racecheck::RaceCheckService Cold(baseOptions());
      Cold.update(std::move(P));
      double S = CT.seconds();
      if (R == 0 || S < ColdSecs)
        ColdSecs = S;
      Match = Match && racecheck::toReportJson(*Cold.report()) == IncrJson;
    }
    if (!Match)
      ++Mismatches;

    // The compile is identical on both sides and excluded from both
    // timers; the comparison is cascade+check against cascade+check.
    ColdTotal += ColdSecs;
    IncrTotal += IncrSecs;
    if (I == 1)
      TouchSpeedup = IncrSecs > 0 ? ColdSecs / IncrSecs : 0;
    FinalWarnings = Rep.Warnings;

    char FuncCol[16];
    if (I <= 1)
      std::snprintf(FuncCol, sizeof(FuncCol), "-");
    else
      std::snprintf(FuncCol, sizeof(FuncCol), "%u", Func);
    std::printf("  %-4u %-7s %5s  %9.3f %9.3f %7.1fx  %5u %6u %6u  %5u %5s\n",
                I, Kind, FuncCol, ColdSecs, IncrSecs,
                IncrSecs > 0 ? ColdSecs / IncrSecs : 0.0, Rep.Functions,
                Rep.FunctionsChecked, Rep.FunctionsFromCache, Rep.Warnings,
                Match ? "ok" : "FAIL");
    std::fflush(stdout);
  }

  double Aggregate = IncrTotal > 0 ? ColdTotal / IncrTotal : 0;
  std::printf("\n  total cold %.3fs, total incremental %.3fs (%.1fx "
              "aggregate, %.1fx touch), mismatches %u\n",
              ColdTotal, IncrTotal, Aggregate, TouchSpeedup, Mismatches);

  if (StatsJson)
    std::printf("{\"racecheck_bench\": {\"scale\": %.2f, \"functions\": %u, "
                "\"edits\": %u, \"verdicts_identical\": %s, "
                "\"touch_speedup\": %.2f, \"aggregate_speedup\": %.2f, "
                "\"final_warnings\": %u, \"cold_seconds\": %.4f, "
                "\"incremental_seconds\": %.4f}}\n",
                Scale, Cfg.NumFunctions, NumEdits,
                Mismatches == 0 ? "true" : "false", TouchSpeedup, Aggregate,
                FinalWarnings, ColdTotal, IncrTotal);
  return Mismatches ? 1 : 0;
}
