//===- bench/ablation_cascade.cpp - Cascade depth ablation ----------------===//
//
// Ablation for the cascade itself (Section 4 notes One-Level Flow "can
// be cascaded between Steensgaard and Andersen"): compare
//   (a) Steensgaard partitions only,
//   (b) Steensgaard -> Andersen (the paper's default),
//   (c) Steensgaard -> One-Level Flow -> Andersen.
//
// The three configurations share one cross-cluster summary cache (and
// one Algorithm-1 slice cache): any partition that lands below the
// Andersen threshold is identical across configurations, so later
// configurations replay its FSCS run from the cache instead of
// recomputing it. The per-config "cache h/m" column shows the
// cumulative hit/miss counters after that configuration.
//
// Usage: ablation_cascade [scale] [--stats-json] [--no-summary-cache]
//
// --stats-json dumps the BootstrapResult of the final configuration --
// including the cumulative summary/slice cache counters -- as a JSON
// document on stdout. --no-summary-cache is the ablation control: it
// detaches both caches so every cluster is recomputed from scratch.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/BootstrapDriver.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace bsaa;
using namespace bsaa::bench;

int main(int Argc, char **Argv) {
  bool StatsJson = false;
  bool UseCache = true;
  for (int I = 1; I < Argc;) {
    bool Strip = false;
    if (std::strcmp(Argv[I], "--stats-json") == 0) {
      StatsJson = true;
      Strip = true;
    } else if (std::strcmp(Argv[I], "--no-summary-cache") == 0) {
      UseCache = false;
      Strip = true;
    }
    if (Strip) {
      // Hide the flag from the positional scale parser.
      for (int J = I; J + 1 < Argc; ++J)
        Argv[J] = Argv[J + 1];
      --Argc;
    } else {
      ++I;
    }
  }

  double Scale = scaleFromArgs(Argc, Argv, 0.2);

  // One process-wide cache pair: entries are keyed by a program
  // fingerprint, so sharing across programs is safe.
  auto SummaryCache =
      UseCache ? std::make_shared<fscs::SummaryCache>() : nullptr;
  auto SliceCache =
      UseCache ? std::make_shared<core::SliceCache>() : nullptr;

  core::BootstrapResult LastRun;
  for (const char *Name : {"autofs", "clamd"}) {
    workload::SuiteEntry Entry = workload::suiteEntry(Name, Scale);
    std::unique_ptr<ir::Program> P = compileEntry(Entry);
    std::printf("\n%s (scale %.2f, %u pointers)\n", Name, Scale,
                P->numPointers());
    std::printf("  %-28s %9s %6s %12s %12s %13s\n", "cascade", "#clusters",
                "max", "refine-time", "fscs-sim-par", "cache h/m");

    struct Config {
      const char *Label;
      uint32_t Threshold;
      bool OneFlow;
    };
    const Config Configs[] = {
        {"steensgaard only", UINT32_MAX, false},
        {"steensgaard->andersen", 60, false},
        {"steens->oneflow->andersen", 60, true},
    };
    for (const Config &C : Configs) {
      core::BootstrapOptions Opts;
      Opts.AndersenThreshold = C.Threshold;
      Opts.UseOneFlow = C.OneFlow;
      Opts.EngineOpts.StepBudget = 50000;
      Opts.SummaryCache = SummaryCache;
      Opts.RelevantSliceCache = SliceCache;
      core::BootstrapDriver Driver(*P, Opts);
      core::BootstrapResult R = Driver.runAll();
      char CacheCol[32];
      if (UseCache)
        std::snprintf(CacheCol, sizeof(CacheCol), "%" PRIu64 "/%" PRIu64,
                      R.SummaryCacheReport.Counters.Hits,
                      R.SummaryCacheReport.Counters.Misses);
      else
        std::snprintf(CacheCol, sizeof(CacheCol), "off");
      std::printf("  %-28s %9u %6u %12.3f %12s %13s\n", C.Label,
                  R.NumClusters, R.MaxClusterSize,
                  R.AndersenClusteringSeconds + R.OneFlowSeconds,
                  formatSeconds(R.SimulatedParallelSeconds, R.AnyBudgetHit)
                      .c_str(),
                  CacheCol);
      std::fflush(stdout);
      LastRun = std::move(R);
    }
  }

  if (StatsJson)
    std::fputs(core::toStatsJson(LastRun).c_str(), stdout);
  return 0;
}
