//===- bench/ablation_cascade.cpp - Cascade depth ablation ----------------===//
//
// Ablation for the cascade itself (Section 4 notes One-Level Flow "can
// be cascaded between Steensgaard and Andersen"): compare
//   (a) Steensgaard partitions only,
//   (b) Steensgaard -> Andersen (the paper's default),
//   (c) Steensgaard -> One-Level Flow -> Andersen.
//
// Usage: ablation_cascade [scale] (default 0.3)
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "core/BootstrapDriver.h"

#include <cstdio>

using namespace bsaa;
using namespace bsaa::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv, 0.2);

  for (const char *Name : {"autofs", "clamd"}) {
    workload::SuiteEntry Entry = workload::suiteEntry(Name, Scale);
    std::unique_ptr<ir::Program> P = compileEntry(Entry);
    std::printf("\n%s (scale %.2f, %u pointers)\n", Name, Scale,
                P->numPointers());
    std::printf("  %-28s %9s %6s %12s %12s\n", "cascade", "#clusters",
                "max", "refine-time", "fscs-sim-par");

    struct Config {
      const char *Label;
      uint32_t Threshold;
      bool OneFlow;
    };
    const Config Configs[] = {
        {"steensgaard only", UINT32_MAX, false},
        {"steensgaard->andersen", 60, false},
        {"steens->oneflow->andersen", 60, true},
    };
    for (const Config &C : Configs) {
      core::BootstrapOptions Opts;
      Opts.AndersenThreshold = C.Threshold;
      Opts.UseOneFlow = C.OneFlow;
      Opts.EngineOpts.StepBudget = 50000;
      core::BootstrapDriver Driver(*P, Opts);
      core::BootstrapResult R = Driver.runAll();
      std::printf("  %-28s %9u %6u %12.3f %12s\n", C.Label, R.NumClusters,
                  R.MaxClusterSize,
                  R.AndersenClusteringSeconds + R.OneFlowSeconds,
                  formatSeconds(R.SimulatedParallelSeconds, R.AnyBudgetHit)
                      .c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
